package dataset

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"clusteragg/internal/obs"
)

// defaultChunkBytes is the target size of one parse chunk. Big enough that
// per-chunk overhead (reader setup, local intern maps, the merge remap)
// amortizes to noise, small enough that workers*chunk stays tens of MB.
const defaultChunkBytes = 1 << 20

// ReadCSVParallel is ReadCSV with chunked, concurrent parsing: the input is
// split into byte ranges snapped to record boundaries (quote-aware, so
// quoted embedded newlines never split a record), opts.Workers goroutines
// parse chunks with chunk-local interning, and the chunk symbol tables are
// merged into global ids strictly in chunk order. Because both the sequential
// reader's bounded-intern overflow resolution and the chunk merge reduce to
// exact first-occurrence interning in row order, the resulting Table is
// bit-identical to ReadCSV's on every input — ids, column order, inferred
// kinds, missing cells, and errors (messages and which-row-wins ordering)
// all match. Workers=1 still exercises the chunked path.
func ReadCSVParallel(r io.Reader, opts CSVOptions) (*Table, error) {
	tab, _, err := readCSVChunked(r, opts, defaultChunkBytes, nil)
	return tab, err
}

// CSVSink consumes the merged output of a chunked CSV read incrementally, in
// row order, while later chunks are still being parsed. This is the
// ingest/compute pipelining seam: a packed-column builder implementing
// CSVSink can seal row ranges for shard consumers long before EOF.
//
// Schema is called exactly once, as soon as every inferred column has
// settled (a column settles categorical at its first unparseable value;
// columns that are still numeric-viable — and therefore might not induce a
// clustering at all — defer Schema to EOF, degrading gracefully to
// drain-then-compute). cats lists the categorical column names in column
// order. Rows then delivers global rows [lo, hi): cats[i] holds the global
// value ids of the i-th categorical column (MissingValue for missing cells)
// and class the class ids (nil when there is no class column). The slices
// are only valid during the call — the sink must copy or pack what it keeps.
//
// A non-nil error from either method aborts the read and is returned from
// ReadCSVStream. Note that per-column errors (a non-numeric cell in a forced
// numeric column, a missing class label) keep the sequential reader's
// report-at-finalize semantics: rows may reach the sink before the read as a
// whole fails, and the sink's output must then be discarded.
type CSVSink interface {
	Schema(cats []string, hasClass bool) error
	Rows(lo, hi int, cats [][]int, class []int) error
}

// CSVStream summarizes a completed ReadCSVStream call.
type CSVStream struct {
	// Rows is the number of data rows delivered.
	Rows int
	// Bytes is the number of input bytes consumed.
	Bytes int64
	// Cats names the categorical columns, matching the Schema call.
	Cats []string
	// ClassNames maps the class ids delivered to the sink to their strings.
	ClassNames []string
}

// ReadCSVStream runs the chunked parallel reader but hands the merged rows
// to sink instead of materializing a Table, so downstream packing and shard
// aggregation overlap with parsing. Ids, row order and errors are identical
// to ReadCSV/ReadCSVParallel; numeric column data is not delivered (force
// columns numeric via NumericColumns to keep them out of the schema without
// delaying it).
func ReadCSVStream(r io.Reader, opts CSVOptions, sink CSVSink) (*CSVStream, error) {
	_, st, err := readCSVChunked(r, opts, defaultChunkBytes, sink)
	return st, err
}

// chunker splits the input into record-aligned byte chunks. A split point is
// a newline seen at even double-quote parity: inside a quoted field parity
// is odd, so quoted embedded newlines never split a record, and for valid
// csv every even-parity newline is a record terminator. (For invalid csv the
// rule only ever under-splits — a bare quote suppresses splits until the
// next quote — so the malformed record always reaches one chunk intact and
// fails with the sequential reader's error.)
type chunker struct {
	r    io.Reader
	buf  []byte
	size int
	err  error // sticky read error, io.EOF included
	line int   // 1-based physical line number of buf[0]
}

// fill reads until the buffer holds at least target bytes or input ends.
func (ck *chunker) fill(target int) {
	for len(ck.buf) < target && ck.err == nil {
		if cap(ck.buf)-len(ck.buf) < 4096 {
			nb := make([]byte, len(ck.buf), max(2*cap(ck.buf), target, 64*1024))
			copy(nb, ck.buf)
			ck.buf = nb
		}
		n, err := ck.r.Read(ck.buf[len(ck.buf):cap(ck.buf)])
		ck.buf = ck.buf[:len(ck.buf)+n]
		if err != nil {
			ck.err = err
		}
	}
}

func (ck *chunker) readErr() error {
	if ck.err != nil && ck.err != io.EOF {
		return ck.err
	}
	return nil
}

// firstRecord returns the raw bytes of the first csv record, skipping (and
// line-counting) the leading blank lines the csv reader would skip, growing
// the buffer until the record's terminating newline is found or input ends.
// The returned slice aliases the buffer until consume is called.
func (ck *chunker) firstRecord() ([]byte, int, error) {
	for {
		ck.fill(2)
		if len(ck.buf) == 0 {
			return nil, 0, ck.readErr()
		}
		if ck.buf[0] == '\n' {
			ck.buf = ck.buf[1:]
			ck.line++
			continue
		}
		if ck.buf[0] == '\r' && len(ck.buf) > 1 && ck.buf[1] == '\n' {
			ck.buf = ck.buf[2:]
			ck.line++
			continue
		}
		break
	}
	scanned, parity := 0, 0
	nl := 0
	for {
		for i := scanned; i < len(ck.buf); i++ {
			switch ck.buf[i] {
			case '"':
				parity ^= 1
			case '\n':
				if parity == 0 {
					return ck.buf[:i+1], nl + 1, nil
				}
				nl++
			}
		}
		scanned = len(ck.buf)
		if ck.err != nil {
			return ck.buf, nl, ck.readErr()
		}
		ck.fill(len(ck.buf) + ck.size)
	}
}

// consume drops the first n bytes (the header record) and advances the line
// counter by the nl newlines they contained.
func (ck *chunker) consume(n, nl int) {
	ck.buf = ck.buf[n:]
	ck.line += nl
}

// next returns the next record-aligned chunk and the 1-based line number of
// its first byte. ok is false when the input is exhausted; err reports an
// underlying (non-EOF) read error.
func (ck *chunker) next() (data []byte, startLine int, ok bool, err error) {
	scanned, parity := 0, 0
	lastSafe, nlBefore, nl := -1, 0, 0
	target := ck.size
	for {
		ck.fill(target)
		if len(ck.buf) == 0 {
			return nil, 0, false, ck.readErr()
		}
		if parity == 0 {
			// Quote-free fast path over the newly read region.
			seg := ck.buf[scanned:]
			if q := bytes.IndexByte(seg, '"'); q < 0 {
				if j := bytes.LastIndexByte(seg, '\n'); j >= 0 {
					lastSafe = scanned + j
					nlBefore = nl + bytes.Count(seg[:j+1], []byte{'\n'})
				}
				nl += bytes.Count(seg, []byte{'\n'})
				scanned = len(ck.buf)
			}
		}
		for i := scanned; i < len(ck.buf); i++ {
			switch ck.buf[i] {
			case '"':
				parity ^= 1
			case '\n':
				nl++
				if parity == 0 {
					lastSafe, nlBefore = i, nl
				}
			}
		}
		scanned = len(ck.buf)
		if ck.err != nil {
			if err := ck.readErr(); err != nil {
				return nil, 0, false, err
			}
			data, startLine = ck.buf, ck.line
			ck.buf = nil
			ck.line += nl
			return data, startLine, true, nil
		}
		if lastSafe >= 0 && len(ck.buf) >= ck.size {
			data, startLine = ck.buf[:lastSafe+1], ck.line
			// The remainder is copied out so the emitted chunk owns its
			// backing array; it is rescanned on the next call.
			ck.buf = append([]byte(nil), ck.buf[lastSafe+1:]...)
			ck.line += nlBefore
			return data, startLine, true, nil
		}
		// No record boundary in the buffer yet (giant record or quoted
		// region): extend and keep scanning where we left off.
		target = len(ck.buf) + ck.size
	}
}

// chunkSchema is the immutable per-read configuration shared by every chunk
// parser: resolved header, class column index, forced kinds, and the cell
// matchers — everything value-independent, so chunks never disagree on it.
type chunkSchema struct {
	header    []string
	classIdx  int
	forcedNum []bool
	forcedCat []bool
	comma     rune
	trim      bool
	isMissing func(string) bool
}

func newChunkSchema(opts *CSVOptions, header []string) (*chunkSchema, error) {
	classIdx, err := classIndex(opts, header)
	if err != nil {
		return nil, err
	}
	sc := &chunkSchema{
		header:    header,
		classIdx:  classIdx,
		forcedNum: make([]bool, len(header)),
		forcedCat: make([]bool, len(header)),
		comma:     opts.Comma,
		trim:      opts.TrimSpace,
		isMissing: missingMatcher(opts),
	}
	for i, name := range header {
		if i == classIdx {
			continue
		}
		sc.forcedNum[i] = nameForced(opts.NumericColumns, name)
		sc.forcedCat[i] = !sc.forcedNum[i] && nameForced(opts.CategoricalColumns, name)
	}
	return sc, nil
}

// chunkCol is the per-chunk, per-column parse state: local first-occurrence
// interning (unbounded — a chunk's distinct-value set is capped by its byte
// size) plus the same inference flags the sequential reader tracks.
type chunkCol struct {
	tryNum  bool
	seenVal bool
	floats  []float64
	ids     []int32 // local ids; -1 marks a missing cell
	names   []string
	lookup  map[string]int32
	badRow  int // chunk-relative row of the first bad cell
	badVal  string
}

// localID interns v in the chunk-local table, cloning on first occurrence
// (v aliases the csv reader's reused record buffer).
func (c *chunkCol) localID(v string) int32 {
	if id, ok := c.lookup[v]; ok {
		return id
	}
	v = strings.Clone(v)
	id := int32(len(c.names))
	c.lookup[v] = id
	c.names = append(c.names, v)
	return id
}

type chunkJob struct {
	index     int
	data      []byte
	startLine int
}

type parsedChunk struct {
	index int
	rows  int
	cols  []*chunkCol
	err   error
}

// remapChunkErr rebases a csv.ParseError's line numbers from chunk-local to
// whole-input coordinates so the error text matches the sequential reader's.
func remapChunkErr(err error, startLine int) error {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		pe.StartLine += startLine - 1
		pe.Line += startLine - 1
	}
	return err
}

// parseChunk parses one byte range with the exact per-cell logic of ReadCSV
// (trim, missing tokens, float viability, forced kinds), except that
// interning is chunk-local. Field count is pinned to the header width so
// ragged records fail identically no matter which chunk they land in.
func parseChunk(sc *chunkSchema, job chunkJob) *parsedChunk {
	pc := &parsedChunk{index: job.index, cols: make([]*chunkCol, len(sc.header))}
	for i := range pc.cols {
		c := &chunkCol{badRow: -1, lookup: make(map[string]int32)}
		c.tryNum = i != sc.classIdx && !sc.forcedNum[i] && !sc.forcedCat[i]
		pc.cols[i] = c
	}
	cr := csv.NewReader(bytes.NewReader(job.data))
	if sc.comma != 0 {
		cr.Comma = sc.comma
	}
	cr.ReuseRecord = true
	cr.FieldsPerRecord = len(sc.header)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return pc
		}
		if err != nil {
			pc.err = remapChunkErr(err, job.startLine)
			return pc
		}
		row := pc.rows
		pc.rows++
		for i, v := range rec {
			if sc.trim {
				v = strings.TrimSpace(v)
			}
			c := pc.cols[i]
			if i == sc.classIdx {
				if sc.isMissing(v) {
					if c.badRow < 0 {
						c.badRow = row
					}
					c.ids = append(c.ids, MissingValue)
				} else {
					c.ids = append(c.ids, c.localID(v))
				}
				continue
			}
			if sc.isMissing(v) {
				if sc.forcedNum[i] || c.tryNum {
					c.floats = append(c.floats, math.NaN())
				}
				if !sc.forcedNum[i] {
					c.ids = append(c.ids, MissingValue)
				}
				continue
			}
			c.seenVal = true
			if sc.forcedNum[i] || c.tryNum {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					c.floats = append(c.floats, f)
				} else if sc.forcedNum[i] {
					if c.badRow < 0 {
						c.badRow = row
						c.badVal = strings.Clone(v)
					}
				} else {
					c.tryNum = false
					c.floats = nil
				}
			}
			if sc.forcedNum[i] {
				continue
			}
			c.ids = append(c.ids, c.localID(v))
		}
	}
}

// mergeCol is the whole-input per-column state the in-order merge builds:
// global ids under exact first-occurrence interning plus the same inference
// and error bookkeeping as the sequential reader, now in global rows.
type mergeCol struct {
	tryNum  bool
	seenVal bool
	floats  []float64
	ids     []int
	base    int // global row of ids[0] (streamed prefixes are dropped)
	in      *intern
	badRow  int
	badVal  string
}

type mergeState struct {
	sc         *chunkSchema
	sink       CSVSink
	cols       []*mergeCol
	rows       int
	emitted    int
	schemaSent bool
	catIdx     []int
	catNames   []string
	catBuf     [][]int
}

func newMergeState(sc *chunkSchema, sink CSVSink) *mergeState {
	m := &mergeState{sc: sc, sink: sink, cols: make([]*mergeCol, len(sc.header))}
	for i := range m.cols {
		c := &mergeCol{badRow: -1, in: newIntern()}
		c.tryNum = i != sc.classIdx && !sc.forcedNum[i] && !sc.forcedCat[i]
		m.cols[i] = c
	}
	return m
}

// appendIDs translates a chunk's local ids to global ids. Interning the
// chunk's symbol table in its local order preserves first-occurrence order
// globally (chunks are merged in input order, and within a chunk local order
// is row order), which is exactly the mapping the sequential reader's
// bounded-intern overflow resolution produces.
func (m *mergeState) appendIDs(mc *mergeCol, cc *chunkCol) {
	var remap []int
	if len(cc.names) > 0 {
		remap = make([]int, len(cc.names))
		for li, name := range cc.names {
			remap[li] = mc.in.id(name)
		}
	}
	for _, id := range cc.ids {
		if id < 0 {
			mc.ids = append(mc.ids, MissingValue)
		} else {
			mc.ids = append(mc.ids, remap[id])
		}
	}
}

func (m *mergeState) mergeChunk(pc *parsedChunk) {
	rowBase := m.rows
	m.rows += pc.rows
	for i, cc := range pc.cols {
		mc := m.cols[i]
		if i == m.sc.classIdx {
			if mc.badRow < 0 && cc.badRow >= 0 {
				mc.badRow = rowBase + cc.badRow
			}
			m.appendIDs(mc, cc)
			continue
		}
		if m.sc.forcedNum[i] {
			if mc.badRow < 0 && cc.badRow >= 0 {
				mc.badRow = rowBase + cc.badRow
				mc.badVal = cc.badVal
			}
			if m.sink == nil {
				mc.floats = append(mc.floats, cc.floats...)
			}
			continue
		}
		if cc.seenVal {
			mc.seenVal = true
		}
		if mc.tryNum && !cc.tryNum {
			mc.tryNum = false
			mc.floats = nil
		}
		if mc.tryNum && m.sink == nil {
			mc.floats = append(mc.floats, cc.floats...)
		}
		m.appendIDs(mc, cc)
	}
}

// settled reports whether column i's kind can no longer change: forced
// kinds are settled from the start, inferred ones once numeric viability
// dies. A still-viable inferred column stays open until EOF.
func (m *mergeState) settled(i int) bool {
	return i == m.sc.classIdx || m.sc.forcedNum[i] || m.sc.forcedCat[i] || !m.cols[i].tryNum
}

func (m *mergeState) allSettled() bool {
	for i := range m.cols {
		if !m.settled(i) {
			return false
		}
	}
	return true
}

// sendSchema fixes the categorical column set (the kinds are settled, so
// the rule below can no longer change its mind) and tells the sink.
func (m *mergeState) sendSchema() error {
	for i, mc := range m.cols {
		if i == m.sc.classIdx || m.sc.forcedNum[i] || (mc.tryNum && mc.seenVal) {
			continue
		}
		m.catIdx = append(m.catIdx, i)
		m.catNames = append(m.catNames, m.sc.header[i])
	}
	m.schemaSent = true
	if m.catNames == nil {
		m.catNames = []string{}
	}
	return m.sink.Schema(m.catNames, m.sc.classIdx >= 0)
}

// flush delivers buffered rows [emitted, hi) to the sink and drops them:
// after the call the merge retains nothing before hi, so steady-state
// memory is one chunk per column, not the whole file.
func (m *mergeState) flush(hi int) error {
	if hi == m.emitted {
		return nil
	}
	lo := m.emitted
	cats := m.catBuf[:0]
	for _, ci := range m.catIdx {
		mc := m.cols[ci]
		cats = append(cats, mc.ids[lo-mc.base:hi-mc.base])
	}
	m.catBuf = cats
	var class []int
	if m.sc.classIdx >= 0 {
		mc := m.cols[m.sc.classIdx]
		class = mc.ids[lo-mc.base : hi-mc.base]
	}
	if err := m.sink.Rows(lo, hi, cats, class); err != nil {
		return err
	}
	m.emitted = hi
	for _, ci := range m.catIdx {
		mc := m.cols[ci]
		mc.ids, mc.base = mc.ids[:0], hi
	}
	if m.sc.classIdx >= 0 {
		mc := m.cols[m.sc.classIdx]
		mc.ids, mc.base = mc.ids[:0], hi
	}
	return nil
}

// add merges one parsed chunk and, in stream mode, forwards whatever rows
// are ready (all merged rows once the schema has settled).
func (m *mergeState) add(pc *parsedChunk) error {
	m.mergeChunk(pc)
	if m.sink == nil {
		return nil
	}
	if !m.schemaSent {
		if !m.allSettled() {
			return nil
		}
		if err := m.sendSchema(); err != nil {
			return err
		}
	}
	return m.flush(m.rows)
}

// finalizeErr runs the sequential reader's finalize-time error checks in
// column order, so which-row-wins ordering matches exactly.
func (m *mergeState) finalizeErr() error {
	for i, mc := range m.cols {
		if i == m.sc.classIdx {
			if mc.badRow >= 0 {
				return fmt.Errorf("dataset: missing class label at row %d", mc.badRow)
			}
			continue
		}
		if m.sc.forcedNum[i] && mc.badRow >= 0 {
			return fmt.Errorf("dataset: column %q row %d: %q is not numeric", m.sc.header[i], mc.badRow, mc.badVal)
		}
	}
	return nil
}

func (m *mergeState) finalizeTable(name string, bytesRead int64) (*Table, error) {
	if err := m.finalizeErr(); err != nil {
		return nil, err
	}
	t := &Table{Name: name, BytesRead: bytesRead}
	for i, mc := range m.cols {
		if i == m.sc.classIdx {
			t.Class = mc.ids
			t.ClassNames = mc.in.names
			continue
		}
		if m.sc.forcedNum[i] || (mc.tryNum && mc.seenVal) {
			t.Cols = append(t.Cols, &Column{Name: m.sc.header[i], Kind: Numeric, Floats: mc.floats})
			continue
		}
		if mc.ids == nil {
			mc.ids = []int{}
		}
		t.Cols = append(t.Cols, &Column{Name: m.sc.header[i], Kind: Categorical, Values: mc.ids, Names: mc.in.names})
	}
	return t, nil
}

func (m *mergeState) finalizeStream(bytesRead int64) (*CSVStream, error) {
	if err := m.finalizeErr(); err != nil {
		return nil, err
	}
	if !m.schemaSent {
		if err := m.sendSchema(); err != nil {
			return nil, err
		}
	}
	if err := m.flush(m.rows); err != nil {
		return nil, err
	}
	st := &CSVStream{Rows: m.rows, Bytes: bytesRead, Cats: m.catNames}
	if m.sc.classIdx >= 0 {
		st.ClassNames = m.cols[m.sc.classIdx].in.names
	}
	return st, nil
}

// readCSVChunked is the shared chunk/parse/merge engine behind
// ReadCSVParallel (sink == nil: materialize a Table) and ReadCSVStream
// (sink != nil: deliver rows incrementally). Workers parse chunks out of
// order; the merge consumes them strictly in input order, so every output —
// ids, rows, errors — is deterministic and scheduling-independent.
func readCSVChunked(r io.Reader, opts CSVOptions, chunkSize int, sink CSVSink) (*Table, *CSVStream, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	count := &countingReader{r: r}
	ck := &chunker{r: count, size: chunkSize, line: 1}

	prefix, nlPrefix, err := ck.firstRecord()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	fr := csv.NewReader(bytes.NewReader(prefix))
	if opts.Comma != 0 {
		fr.Comma = opts.Comma
	}
	first, err := fr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("dataset: empty csv input")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	header := make([]string, len(first))
	if opts.HasHeader {
		for i, h := range first {
			header[i] = strings.Clone(h)
		}
		ck.consume(len(prefix), nlPrefix)
	} else {
		for i := range header {
			header[i] = fmt.Sprintf("col%d", i)
		}
	}
	sc, err := newChunkSchema(&opts, header)
	if err != nil {
		return nil, nil, err
	}

	jobs := make(chan chunkJob, workers)
	results := make(chan *parsedChunk, workers)
	done := make(chan struct{})
	var readErr error
	go func() {
		defer close(jobs)
		idx := 0
		for {
			data, line, ok, err := ck.next()
			if err != nil {
				readErr = err
				return
			}
			if !ok {
				return
			}
			select {
			case jobs <- chunkJob{index: idx, data: data, startLine: line}:
				idx++
			case <-done:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			obs.Do(obs.ProfLabels{Phase: "ingest", Worker: strconv.Itoa(worker)}, func() {
				for job := range jobs {
					results <- parseChunk(sc, job)
				}
			})
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	m := newMergeState(sc, sink)
	pending := make(map[int]*parsedChunk)
	want := 0
	var fatal error
	abort := func(err error) {
		fatal = err
		close(done)
	}
	for pc := range results {
		if fatal != nil {
			continue
		}
		pending[pc.index] = pc
		for fatal == nil {
			p, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			want++
			if p.err != nil {
				abort(fmt.Errorf("dataset: reading csv: %w", p.err))
				break
			}
			if err := m.add(p); err != nil {
				abort(err)
			}
		}
	}
	if fatal != nil {
		return nil, nil, fatal
	}
	if readErr != nil {
		return nil, nil, fmt.Errorf("dataset: reading csv: %w", readErr)
	}
	if opts.HasHeader && m.rows == 0 {
		return nil, nil, fmt.Errorf("dataset: csv has a header but no data rows")
	}
	if sink != nil {
		st, err := m.finalizeStream(count.n)
		return nil, st, err
	}
	tab, err := m.finalizeTable(opts.Name, count.n)
	return tab, nil, err
}
