package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"clusteragg/internal/obs"
	"clusteragg/internal/partition"
)

// recorderProblem builds a seeded synthetic aggregation problem: m noisy
// copies of a planted 3-clustering over n objects.
func recorderProblem(t testing.TB, n, m int, seed int64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := make(partition.Labels, n)
	for i := range truth {
		truth[i] = i % 3
	}
	inputs := make([]partition.Labels, m)
	for ci := range inputs {
		c := make(partition.Labels, n)
		copy(c, truth)
		for i := range c {
			if rng.Float64() < 0.15 {
				c[i] = rng.Intn(4)
			}
		}
		inputs[ci] = c
	}
	p, err := NewProblem(inputs, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sameLabels(t *testing.T, name string, plain, traced partition.Labels) {
	t.Helper()
	if len(plain) != len(traced) {
		t.Fatalf("%s: length %d vs %d", name, len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Errorf("%s: label[%d] = %d without recorder, %d with", name, i, plain[i], traced[i])
			return
		}
	}
}

// TestRecorderDoesNotChangeResults runs every method with and without a
// Recorder attached and demands bit-identical labels: instrumentation must
// observe, never steer.
func TestRecorderDoesNotChangeResults(t *testing.T) {
	p := recorderProblem(t, 80, 5, 7)
	methods := append(Methods(), ExtensionMethods()...)
	for _, method := range methods {
		for _, mat := range []bool{false, true} {
			opts := func(rec *obs.Recorder) AggregateOptions {
				return AggregateOptions{
					Materialize: mat,
					Rand:        rand.New(rand.NewSource(3)),
					Recorder:    rec,
				}
			}
			plain, err := p.Aggregate(method, opts(nil))
			if err != nil {
				t.Fatalf("%v (materialize=%v): %v", method, mat, err)
			}
			rec := obs.New()
			traced, err := p.Aggregate(method, opts(rec))
			if err != nil {
				t.Fatalf("%v (materialize=%v) instrumented: %v", method, mat, err)
			}
			sameLabels(t, method.String(), plain, traced)
			if len(rec.Spans()) == 0 {
				t.Errorf("%v: recorder collected no spans", method)
			}
			if len(rec.Counters()) == 0 {
				t.Errorf("%v: recorder collected no counters", method)
			}
		}
	}
}

// TestRecorderBestOfEquivalence checks BestOf under instrumentation: same
// winner, same labels, and a nonzero distance-probe counter for each of the
// five paper methods (the acceptance criterion of the instrumentation PR).
func TestRecorderBestOfEquivalence(t *testing.T) {
	p := recorderProblem(t, 60, 4, 11)
	opts := func(rec *obs.Recorder) AggregateOptions {
		return AggregateOptions{
			Materialize: true,
			Rand:        rand.New(rand.NewSource(5)),
			Recorder:    rec,
		}
	}
	plain, plainWinner, err := p.BestOf(nil, opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	traced, tracedWinner, err := p.BestOf(nil, opts(rec))
	if err != nil {
		t.Fatal(err)
	}
	if plainWinner != tracedWinner {
		t.Fatalf("winner %v without recorder, %v with", plainWinner, tracedWinner)
	}
	sameLabels(t, "bestof", plain, traced)

	counters := rec.Counters()
	for _, method := range Methods() {
		key := method.Slug() + ".dist_probes"
		if counters[key] <= 0 {
			t.Errorf("counter %s = %d, want > 0", key, counters[key])
		}
	}
}

// TestRecorderSampleEquivalence checks the SAMPLING pipeline: identical
// labels with and without a Recorder, and the sampling-specific counters
// present.
func TestRecorderSampleEquivalence(t *testing.T) {
	p := recorderProblem(t, 200, 4, 13)
	run := func(rec *obs.Recorder) partition.Labels {
		t.Helper()
		labels, err := p.Sample(MethodAgglomerative,
			AggregateOptions{Recorder: rec},
			SamplingOptions{SampleSize: 40, Rand: rand.New(rand.NewSource(2))})
		if err != nil {
			t.Fatal(err)
		}
		return labels
	}
	plain := run(nil)
	rec := obs.New()
	traced := run(rec)
	sameLabels(t, "sample", plain, traced)

	counters := rec.Counters()
	if got := counters["sample.size"]; got != 40 {
		t.Errorf("sample.size = %d, want 40", got)
	}
	if counters["sample.assigned"]+counters["sample.fresh_singletons"] != 200-40 {
		t.Errorf("assigned %d + fresh %d != %d non-sampled objects",
			counters["sample.assigned"], counters["sample.fresh_singletons"], 200-40)
	}
	if counters["sample.assign.dist_probes"] <= 0 {
		t.Error("sample.assign.dist_probes not counted")
	}
}

// TestProgressDoesNotChangeResults attaches an unthrottled Progress sink to
// every method at Workers 0, 1 and 8 and demands labels bit-identical to the
// uninstrumented run. Refine is on so every method exercises the LOCALSEARCH
// emit path, whose completion event is guaranteed to be delivered.
func TestProgressDoesNotChangeResults(t *testing.T) {
	p := recorderProblem(t, 90, 5, 19)
	methods := append(Methods(), ExtensionMethods()...)
	for _, method := range methods {
		for _, workers := range []int{0, 1, 8} {
			opts := func(prog *obs.Progress) AggregateOptions {
				return AggregateOptions{
					Materialize: true,
					Refine:      true,
					Workers:     workers,
					Rand:        rand.New(rand.NewSource(3)),
					Progress:    prog,
				}
			}
			plain, err := p.Aggregate(method, opts(nil))
			if err != nil {
				t.Fatalf("%v (workers=%d): %v", method, workers, err)
			}
			var events atomic.Int64
			prog := obs.NewProgress(func(obs.ProgressEvent) { events.Add(1) }, time.Nanosecond)
			observed, err := p.Aggregate(method, opts(prog))
			if err != nil {
				t.Fatalf("%v (workers=%d) with progress: %v", method, workers, err)
			}
			sameLabels(t, fmt.Sprintf("%v workers=%d", method, workers), plain, observed)
			if events.Load() == 0 {
				t.Errorf("%v (workers=%d): no progress events delivered", method, workers)
			}
		}
	}
}

// TestProgressSampleEquivalence runs the SAMPLING pipeline with a Progress
// sink at every worker count: identical labels, and the batched assignment
// stage reports completion (Done == Total == n).
func TestProgressSampleEquivalence(t *testing.T) {
	const n, sampleSize = 600, 60
	p := recorderProblem(t, n, 4, 23)
	run := func(prog *obs.Progress, workers int) partition.Labels {
		t.Helper()
		labels, err := p.Sample(MethodAgglomerative,
			AggregateOptions{Workers: workers, Progress: prog},
			SamplingOptions{SampleSize: sampleSize, Rand: rand.New(rand.NewSource(2))})
		if err != nil {
			t.Fatal(err)
		}
		return labels
	}
	plain := run(nil, 0)
	for _, workers := range []int{0, 1, 8} {
		var completed atomic.Bool
		prog := obs.NewProgress(func(e obs.ProgressEvent) {
			if e.Stage == "sample:assign" && e.Total == n && e.Done == n {
				completed.Store(true)
			}
		}, time.Nanosecond)
		got := run(prog, workers)
		sameLabels(t, fmt.Sprintf("sample workers=%d", workers), plain, got)
		if !completed.Load() {
			t.Errorf("workers=%d: sample:assign completion event not delivered", workers)
		}
	}
}

// TestConcurrentMetricWrites drives the parallel assignment and local-search
// paths with Workers=8 while a second goroutine continuously snapshots the
// registry, so `go test -race` covers concurrent histogram/gauge writes
// against scrapes (the situation a live -listen server creates).
func TestConcurrentMetricWrites(t *testing.T) {
	p := recorderProblem(t, 600, 4, 29)
	rec := obs.New()
	done := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-done:
				return
			default:
				rec.Counters()
				rec.Gauges()
				rec.Histograms()
				runtime.Gosched()
			}
		}
	}()
	prog := obs.NewProgress(func(obs.ProgressEvent) {}, time.Nanosecond)
	_, err := p.Sample(MethodLocalSearch,
		AggregateOptions{Workers: 8, Recorder: rec, Progress: prog},
		SamplingOptions{SampleSize: 80, Rand: rand.New(rand.NewSource(6))})
	close(done)
	<-scraped
	if err != nil {
		t.Fatal(err)
	}
	hists := rec.Histograms()
	if hists["sample.assign.batch.seconds"].Count == 0 {
		t.Error("no assignment batches observed")
	}
	if hists["localsearch.sweep.seconds"].Count == 0 {
		t.Error("no local-search sweeps observed")
	}
	if _, ok := rec.Gauges()["localsearch.clusters"]; !ok {
		t.Error("localsearch.clusters gauge missing")
	}
}

// TestObsLayersDoNotChangeResults flips on every observability layer at
// once — pprof phase/worker labels, the runtime sampler polling on a tight
// interval, and the structured event log — and demands BestOf labels (and
// winner) bit-identical to the bare run at Workers 0, 1 and 8: telemetry
// must observe, never steer, even with the full stack live.
func TestObsLayersDoNotChangeResults(t *testing.T) {
	p := recorderProblem(t, 200, 4, 31)
	run := func(rec *obs.Recorder, workers int) (partition.Labels, Method) {
		t.Helper()
		labels, winner, err := p.BestOf(nil, AggregateOptions{
			Materialize: true,
			Refine:      true,
			Workers:     workers,
			Rand:        rand.New(rand.NewSource(9)),
			Recorder:    rec,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return labels, winner
	}
	for _, workers := range []int{0, 1, 8} {
		plain, plainWinner := run(nil, workers)

		obs.EnableProfileLabels(true)
		rec := obs.New()
		sampler := obs.NewRuntimeSampler(rec)
		sampler.Sample() // one synchronous poll so gauges exist even on a fast run
		stop := make(chan struct{})
		sampler.SampleEvery(time.Millisecond, stop)
		full, fullWinner := run(rec, workers)
		close(stop)
		obs.EnableProfileLabels(false)

		if plainWinner != fullWinner {
			t.Fatalf("workers=%d: winner %v bare, %v instrumented", workers, plainWinner, fullWinner)
		}
		sameLabels(t, fmt.Sprintf("obs-layers workers=%d", workers), plain, full)

		ev := rec.EventsSnapshot()
		if ev == nil || ev.Count == 0 {
			t.Errorf("workers=%d: no events recorded", workers)
		} else {
			found := false
			for _, e := range ev.Entries {
				if e.Msg == "bestof.winner" {
					found = true
				}
			}
			if !found {
				t.Errorf("workers=%d: bestof.winner event missing from %d entries", workers, len(ev.Entries))
			}
		}
		if _, ok := rec.Gauges()["runtime.goroutines"]; !ok {
			t.Errorf("workers=%d: runtime.goroutines gauge missing", workers)
		}
	}
}

// TestSamplingRecorderFallback verifies SamplingOptions.Recorder falls back
// to the AggregateOptions recorder and takes precedence when both are set.
func TestSamplingRecorderFallback(t *testing.T) {
	p := recorderProblem(t, 120, 3, 17)
	sampleRec, aggRec := obs.New(), obs.New()
	_, err := p.Sample(MethodFurthest,
		AggregateOptions{Recorder: aggRec},
		SamplingOptions{SampleSize: 30, Recorder: sampleRec, Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if len(sampleRec.Counters()) == 0 {
		t.Error("explicit SamplingOptions.Recorder collected nothing")
	}
	if len(aggRec.Counters()) != 0 {
		t.Error("AggregateOptions.Recorder used despite SamplingOptions.Recorder")
	}
}
