// Command gendata writes the synthetic UCI stand-in datasets as CSV, so
// they can be inspected, shipped, or fed back through cmd/clusteragg:
//
//	gendata -dataset votes | clusteragg -header -class class -summary -
//
// Usage:
//
//	gendata [flags]
//
// Flags:
//
//	-dataset NAME   votes | mushrooms | census (default votes)
//	-seed N         generator seed (default 1)
//	-rows N         row count for census (0 = the real 32561)
//	-o FILE         output path (default standard output)
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"clusteragg/internal/dataset"
)

func main() {
	var (
		name = flag.String("dataset", "votes", "dataset to generate: votes|mushrooms|census")
		seed = flag.Int64("seed", 1, "generator seed")
		rows = flag.Int("rows", 0, "row count for census (0 = full size)")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	if err := run(w, *name, *seed, *rows); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
	os.Exit(1)
}

func run(w io.Writer, name string, seed int64, rows int) error {
	var t *dataset.Table
	switch name {
	case "votes":
		t = dataset.SyntheticVotes(seed)
	case "mushrooms":
		t = dataset.SyntheticMushrooms(seed)
	case "census":
		t = dataset.SyntheticCensus(seed, rows)
	default:
		return fmt.Errorf("unknown dataset %q (want votes|mushrooms|census)", name)
	}
	return WriteCSV(w, t)
}

// WriteCSV emits a table as CSV with a header row, the UCI "?" convention
// for missing values, and the class label in a trailing "class" column.
func WriteCSV(w io.Writer, t *dataset.Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.Cols)+1)
	for _, c := range t.Cols {
		header = append(header, c.Name)
	}
	hasClass := t.Class != nil
	if hasClass {
		header = append(header, "class")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := t.N()
	record := make([]string, len(header))
	for row := 0; row < n; row++ {
		for ci, c := range t.Cols {
			switch c.Kind {
			case dataset.Categorical:
				if v := c.Values[row]; v == dataset.MissingValue {
					record[ci] = "?"
				} else {
					record[ci] = c.Names[v]
				}
			case dataset.Numeric:
				if f := c.Floats[row]; math.IsNaN(f) {
					record[ci] = "?"
				} else {
					record[ci] = strconv.FormatFloat(f, 'g', -1, 64)
				}
			}
		}
		if hasClass {
			record[len(record)-1] = t.ClassNames[t.Class[row]]
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
