package corrclust

import (
	"fmt"
	"sort"

	"clusteragg/internal/obs"
	"clusteragg/internal/partition"
)

// DefaultBallsAlpha is the α of Theorem 1, which guarantees the
// 3-approximation bound.
const DefaultBallsAlpha = 0.25

// RecommendedBallsAlpha is the α = 2/5 that Section 4 reports to work better
// on real datasets (α = 1/4 tends to create many singletons).
const RecommendedBallsAlpha = 0.4

// Balls runs the BALLS algorithm of Section 4: vertices are visited in
// increasing order of total incident edge weight; for each unclustered
// vertex u the ball S of unclustered vertices within distance 1/2 is
// examined, and S ∪ {u} becomes a cluster when the average distance from u
// to S is at most alpha, otherwise u becomes a singleton.
//
// With alpha = DefaultBallsAlpha the result is a 3-approximation of the
// optimal correlation clustering (Theorem 1). Alpha must lie in [0, 1/2];
// α = 0 is legal and merges only balls at average distance exactly zero.
func Balls(inst Instance, alpha float64) (partition.Labels, error) {
	return BallsWithOptions(inst, BallsOptions{Alpha: alpha})
}

// BallsWithOrder is Balls with an explicit vertex visiting order, exposed
// so the ordering heuristic can be ablated (the paper calls the
// weight-sorted order "a heuristic that we observed to work well in
// practice"). order must be a permutation of 0..n-1.
func BallsWithOrder(inst Instance, alpha float64, order []int) (partition.Labels, error) {
	return BallsWithOptions(inst, BallsOptions{Alpha: alpha, Order: order})
}

// BallsOptions configures BallsWithOptions.
type BallsOptions struct {
	// Alpha is the ball-acceptance threshold, used exactly as given (0 is a
	// legal value); it must lie in [0, 1/2]. Callers wanting the Theorem 1
	// default pass DefaultBallsAlpha explicitly.
	Alpha float64
	// Order is the vertex visiting order (a permutation of 0..n-1). Nil
	// selects the paper's weight-sorted heuristic order.
	Order []int
	// Recorder, when non-nil, receives the balls.* counters (clusters,
	// singletons, absorbed ball members, largest ball). Nil records nothing
	// and costs nothing.
	Recorder *obs.Recorder
}

// BallsWithOptions is the fully-configurable BALLS entry point; Balls and
// BallsWithOrder are thin wrappers over it.
func BallsWithOptions(inst Instance, opts BallsOptions) (partition.Labels, error) {
	alpha := opts.Alpha
	if alpha < 0 || alpha > 0.5 {
		return nil, fmt.Errorf("corrclust: balls alpha %v outside [0, 0.5]", alpha)
	}
	n := inst.N()
	// Matrix fast path: the weight ordering and ball construction read
	// contiguous rows instead of probing the Instance per pair; the scan
	// order and values match the generic loops, so the result is
	// bit-identical. Reads are bulk-charged to any counting layers.
	mx, charge := matrixFast(inst)
	var rowBuf []float64
	if mx != nil {
		rowBuf = make([]float64, n)
	}
	order := opts.Order
	if order == nil {
		// Sort vertices by increasing total incident weight (the paper's
		// heuristic ordering). Ties break by index for determinism.
		weight := make([]float64, n)
		if mx != nil {
			for u := 0; u < n; u++ {
				rest := weight[u+1:]
				for j, x := range mx.Row(u) {
					weight[u] += x
					rest[j] += x
				}
			}
			charge(pairs(n))
		} else {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					x := inst.Dist(u, v)
					weight[u] += x
					weight[v] += x
				}
			}
		}
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if weight[order[i]] != weight[order[j]] {
				return weight[order[i]] < weight[order[j]]
			}
			return order[i] < order[j]
		})
	}
	if len(order) != n {
		return nil, fmt.Errorf("corrclust: order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, u := range order {
		if u < 0 || u >= n || seen[u] {
			return nil, fmt.Errorf("corrclust: order is not a permutation of 0..%d", n-1)
		}
		seen[u] = true
	}
	labels := make(partition.Labels, n)
	for i := range labels {
		labels[i] = partition.Missing
	}

	next := 0
	var singletons, members, maxBall int64
	ball := make([]int, 0, n)
	for _, u := range order {
		if labels[u] != partition.Missing {
			continue
		}
		ball = ball[:0]
		var total float64
		if mx != nil {
			mx.RowTo(u, rowBuf)
			var probes int64
			for v := 0; v < n; v++ {
				if v == u || labels[v] != partition.Missing {
					continue
				}
				probes++
				if x := rowBuf[v]; x <= 0.5 {
					ball = append(ball, v)
					total += x
				}
			}
			charge(probes)
		} else {
			for v := 0; v < n; v++ {
				if v == u || labels[v] != partition.Missing {
					continue
				}
				if x := inst.Dist(u, v); x <= 0.5 {
					ball = append(ball, v)
					total += x
				}
			}
		}
		labels[u] = next
		if len(ball) > 0 && total/float64(len(ball)) <= alpha {
			for _, v := range ball {
				labels[v] = next
			}
			members += int64(len(ball))
			if int64(len(ball)) > maxBall {
				maxBall = int64(len(ball))
			}
		} else {
			singletons++
		}
		next++
	}
	if rec := opts.Recorder; rec != nil {
		rec.Add("balls.clusters", int64(next))
		rec.Add("balls.singletons", singletons)
		rec.Add("balls.ball_members", members)
		rec.Add("balls.max_ball", maxBall)
	}
	return labels.Normalize(), nil
}
