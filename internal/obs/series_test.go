package obs

import (
	"sync"
	"testing"
)

func TestSeriesAppendAndSnapshot(t *testing.T) {
	r := New()
	s := r.Series("localsearch.cost")
	if s2 := r.Series("localsearch.cost"); s2 != s {
		t.Error("Series is not idempotent per name")
	}
	s.Append(0, 100)
	s.Append(1, 60)
	s.Append(2, 42)

	snap := s.Snapshot()
	if snap.Count != 3 || snap.Stride != 1 || len(snap.Points) != 3 {
		t.Fatalf("snapshot = %+v, want 3 points stride 1", snap)
	}
	for i, want := range []float64{100, 60, 42} {
		p := snap.Points[i]
		if p.Step != int64(i) || p.Value != want {
			t.Errorf("point %d = %+v, want step %d value %g", i, p, i, want)
		}
		if p.WallNS < 0 {
			t.Errorf("point %d wall offset %d < 0", i, p.WallNS)
		}
	}
	if last, ok := s.Last(); !ok || last.Value != 42 {
		t.Errorf("Last = %+v %v, want value 42", last, ok)
	}

	all := r.AllSeries()
	if len(all) != 1 || all["localsearch.cost"].Count != 3 {
		t.Errorf("AllSeries = %+v", all)
	}
}

// TestSeriesDecimation pins the bounding contract: the retained set stays
// within the cap, keeps exactly the appends at indices ≡ 0 (mod stride),
// and the stride doubles each time the buffer fills — all decided by append
// index, never by timing.
func TestSeriesDecimation(t *testing.T) {
	s := &Series{max: 8, stride: 1}
	const total = 100
	for i := 0; i < total; i++ {
		s.Append(int64(i), float64(i))
		if len(s.points) > s.max {
			t.Fatalf("after %d appends: %d retained points > cap %d", i+1, len(s.points), s.max)
		}
	}
	snap := s.Snapshot()
	if snap.Count != total {
		t.Errorf("Count = %d, want %d", snap.Count, total)
	}
	// 100 appends into a cap of 8: stride doubles 1→2→4→8→16.
	if snap.Stride != 16 {
		t.Errorf("stride = %d, want 16", snap.Stride)
	}
	// All points but the appended endpoint sit on the stride grid, ascending.
	grid := snap.Points[:len(snap.Points)-1]
	for i, p := range grid {
		if p.Step != int64(i)*snap.Stride {
			t.Errorf("retained point %d has step %d, want %d", i, p.Step, int64(i)*snap.Stride)
		}
		if p.Value != float64(p.Step) {
			t.Errorf("retained point %d value %g, want %g", i, p.Value, float64(p.Step))
		}
	}
	// The most recent append survives even though 99 % 16 != 0.
	if end := snap.Points[len(snap.Points)-1]; end.Step != total-1 || end.Value != total-1 {
		t.Errorf("endpoint = %+v, want step/value %d", end, total-1)
	}
}

// TestSeriesDeterministic pins that two identical append sequences retain
// identical points — the decimation decision must not depend on wall time.
func TestSeriesDeterministic(t *testing.T) {
	build := func() SeriesSnapshot {
		s := &Series{max: 16, stride: 1}
		for i := 0; i < 1000; i++ {
			s.Append(int64(i), float64(i%7))
		}
		return s.Snapshot()
	}
	a, b := build(), build()
	if a.Count != b.Count || a.Stride != b.Stride || len(a.Points) != len(b.Points) {
		t.Fatalf("shapes differ: %+v vs %+v", a, b)
	}
	for i := range a.Points {
		if a.Points[i].Step != b.Points[i].Step || a.Points[i].Value != b.Points[i].Value {
			t.Errorf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestSeriesEndpointAlwaysPresent(t *testing.T) {
	s := &Series{max: 4, stride: 1}
	for i := 0; i < 7; i++ {
		s.Append(int64(i), float64(i))
		snap := s.Snapshot()
		if len(snap.Points) == 0 {
			t.Fatalf("after %d appends: empty snapshot", i+1)
		}
		if end := snap.Points[len(snap.Points)-1]; end.Step != int64(i) {
			t.Errorf("after %d appends: endpoint step %d, want %d", i+1, end.Step, i)
		}
	}
}

func TestSeriesNilAndEmpty(t *testing.T) {
	var s *Series
	s.Append(1, 2) // must not panic
	if _, ok := s.Last(); ok {
		t.Error("nil series has a last point")
	}
	if snap := s.Snapshot(); snap.Count != 0 || len(snap.Points) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}

	var r *Recorder
	r.Series("x").Append(1, 2) // nil recorder: no-op chain
	if r.AllSeries() != nil {
		t.Error("nil recorder AllSeries != nil")
	}

	live := New()
	empty := live.Series("touched")
	if snap := empty.Snapshot(); snap.Count != 0 || len(snap.Points) != 0 {
		t.Errorf("empty series snapshot = %+v", snap)
	}
	if all := live.AllSeries(); len(all) != 1 {
		t.Errorf("registered-but-empty series missing from AllSeries: %v", all)
	}
}

// TestSeriesConcurrentAppendAndSnapshot exercises the scrape-while-writing
// contract under the race detector: appends from several goroutines while
// snapshots are taken concurrently.
func TestSeriesConcurrentAppendAndSnapshot(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := r.Series("shared")
			for i := 0; i < 500; i++ {
				s.Append(int64(i), float64(w))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := r.AllSeries()["shared"]
		if int64(len(snap.Points)) > snap.Count {
			t.Fatalf("snapshot has more points than appends: %+v", snap)
		}
	}
	wg.Wait()
	if got := r.AllSeries()["shared"].Count; got != 2000 {
		t.Errorf("total appends = %d, want 2000", got)
	}
}
