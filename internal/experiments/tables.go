package experiments

import (
	"fmt"
	"strings"

	"clusteragg/internal/core"
	"clusteragg/internal/corrclust"
	"clusteragg/internal/dataset"
	"clusteragg/internal/eval"
	"clusteragg/internal/limbo"
	"clusteragg/internal/partition"
	"clusteragg/internal/rock"
)

// TableRow is one row of Table 2 or Table 3: an algorithm, the number of
// clusters it produced, its classification error E_C, and its disagreement
// error E_D (unordered-pair scale; the paper's ordered-pair numbers are
// exactly twice these).
type TableRow struct {
	Name string
	K    int
	EC   float64
	ED   float64
	// HasEC is false for rows that only report E_D (the lower bound).
	HasEC bool
	// Labels is the clustering behind the row (nil for the lower bound).
	Labels partition.Labels
}

// CatTableResult is a Table 2 / Table 3 style result on a categorical
// dataset.
type CatTableResult struct {
	Dataset string
	N, M    int
	Rows    []TableRow
}

// String prints the table in the paper's layout.
func (r *CatTableResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, m=%d attributes)\n", r.Dataset, r.N, r.M)
	fmt.Fprintf(&b, "%-24s %4s %8s %12s\n", "algorithm", "k", "E_C", "E_D")
	for _, row := range r.Rows {
		ec := "-"
		if row.HasEC {
			ec = pct(row.EC)
		}
		k := "-"
		if row.K > 0 {
			k = fmt.Sprintf("%d", row.K)
		}
		fmt.Fprintf(&b, "%-24s %4s %8s %12.0f\n", row.Name, k, ec, row.ED)
	}
	return b.String()
}

// catTable runs the shared Table 2/3 protocol on a categorical table: class
// labels and lower bound first, then the five aggregation algorithms, then
// ROCK and LIMBO at the requested parameter settings.
func catTable(t *dataset.Table, cfg Config, rockRuns []rock.Options, limboRuns []limbo.Options) (*CatTableResult, error) {
	rec := cfg.Recorder
	problem, err := tableProblem(t)
	if err != nil {
		return nil, err
	}
	matrix := problem.MatrixWorkers(cfg.Workers)
	res := &CatTableResult{Dataset: t.Name, N: t.N(), M: problem.M()}

	// Every row's E_D lands in the quality series as its ratio over the
	// table's lower bound (step = row index), so a report shows at a glance
	// how far each algorithm sits from optimal — the approximation-quality
	// axis ROADMAP #4 asks for. The lower bound is computed below anyway;
	// the series costs nothing extra.
	lbED := float64(problem.M()) * corrclust.LowerBound(matrix)
	qualitySeries := rec.Series("cost_over_lower_bound")

	addLabeled := func(name string, labels partition.Labels) error {
		ec, err := eval.ClassificationError(labels, t.Class)
		if err != nil {
			return fmt.Errorf("experiments: %s row %s: %w", t.Name, name, err)
		}
		ed := float64(problem.M()) * corrclust.Cost(matrix, labels)
		res.Rows = append(res.Rows, TableRow{
			Name: name, K: labels.K(), EC: ec, HasEC: true,
			ED: ed, Labels: labels,
		})
		if lbED > 0 {
			qualitySeries.Append(int64(len(res.Rows)-1), ed/lbED)
		}
		return nil
	}

	// Class labels row: the dataset's own classes used as a clustering.
	if err := addLabeled("Class labels", t.Class); err != nil {
		return nil, err
	}
	// Lower bound row.
	res.Rows = append(res.Rows, TableRow{Name: "Lower bound", ED: lbED})

	type aggRun struct {
		name   string
		method core.Method
		opts   core.AggregateOptions
	}
	runs := []aggRun{
		{"BestClustering", core.MethodBest, core.AggregateOptions{}},
		{"Agglomerative", core.MethodAgglomerative, core.AggregateOptions{}},
		{"Furthest", core.MethodFurthest, core.AggregateOptions{}},
		{fmt.Sprintf("Balls(a=%.1f)", corrclust.RecommendedBallsAlpha),
			core.MethodBalls, core.AggregateOptions{BallsAlpha: core.Alpha(corrclust.RecommendedBallsAlpha)}},
		{"LocalSearch", core.MethodLocalSearch, core.AggregateOptions{}},
	}
	for _, r := range runs {
		r.opts.Materialize = false // reuse the matrix built above instead
		r.opts.Workers = cfg.Workers
		r.opts.Recorder = rec
		labels, err := aggregateOnMatrix(problem, matrix, r.method, r.opts)
		if err != nil {
			return nil, err
		}
		if err := addLabeled(r.name, labels); err != nil {
			return nil, err
		}
	}

	for _, ro := range rockRuns {
		labels, err := rock.Run(t, ro)
		if err != nil {
			return nil, fmt.Errorf("experiments: rock on %s: %w", t.Name, err)
		}
		if err := addLabeled(fmt.Sprintf("ROCK(k=%d,t=%.2f)", ro.K, ro.Theta), labels); err != nil {
			return nil, err
		}
	}
	for _, lo := range limboRuns {
		lo.Recorder = rec
		labels, err := limbo.Run(t, lo)
		if err != nil {
			return nil, fmt.Errorf("experiments: limbo on %s: %w", t.Name, err)
		}
		if err := addLabeled(fmt.Sprintf("LIMBO(k=%d,phi=%.1f)", lo.K, lo.Phi), labels); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// aggregateOnMatrix runs an aggregation method against a pre-materialized
// distance matrix, avoiding repeated O(m·n²) matrix builds across rows.
func aggregateOnMatrix(p *core.Problem, m *corrclust.Matrix, method core.Method, opts core.AggregateOptions) (partition.Labels, error) {
	switch method {
	case core.MethodBest:
		labels, _, _ := p.BestClustering()
		return labels, nil
	case core.MethodBalls:
		alpha := corrclust.DefaultBallsAlpha
		if opts.BallsAlpha != nil {
			alpha = *opts.BallsAlpha
		}
		return corrclust.BallsWithOptions(m, corrclust.BallsOptions{Alpha: alpha, Recorder: opts.Recorder})
	case core.MethodAgglomerative:
		return corrclust.AgglomerativeWithOptions(m, corrclust.AgglomerativeOptions{K: opts.K, Recorder: opts.Recorder}), nil
	case core.MethodFurthest:
		labels, _ := corrclust.FurthestWithOptions(m, corrclust.FurthestOptions{K: opts.K, Recorder: opts.Recorder})
		return labels, nil
	case core.MethodLocalSearch:
		return corrclust.LocalSearch(m, corrclust.LocalSearchOptions{Recorder: opts.Recorder}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %v", method)
	}
}

// Table2Votes reproduces Table 2 on the Votes stand-in (435 rows, 16
// binary attributes, 288 missing values). ROCK's θ is calibrated to the
// stand-in (θ = 0.50 plays the role the Guha et al. value 0.73 plays on the
// real file: the largest θ at which the two parties stay linked).
func Table2Votes(cfg Config) (*CatTableResult, error) {
	t := dataset.SyntheticVotes(cfg.seed())
	return catTable(t, cfg,
		[]rock.Options{{K: 2, Theta: 0.50}},
		[]limbo.Options{{K: 2, Phi: 0.0}},
	)
}

// Table3Mushrooms reproduces Table 3 on the Mushrooms stand-in. The default
// configuration runs on a deterministic 1500-row subsample (the quadratic
// algorithms dominate otherwise); cfg.Full uses all 8124 rows as the paper
// does.
func Table3Mushrooms(cfg Config) (*CatTableResult, error) {
	// ROCK's θ = 0.60 is the stand-in's analogue of the paper's 0.8 (see
	// Table2Votes); LIMBO keeps the paper's φ = 0.3.
	t := subsample(dataset.SyntheticMushrooms(cfg.seed()), cfg.mushroomsRows(), cfg.seed())
	return catTable(t, cfg,
		[]rock.Options{{K: 2, Theta: 0.6}, {K: 7, Theta: 0.6}, {K: 9, Theta: 0.6}},
		[]limbo.Options{{K: 2, Phi: 0.3}, {K: 7, Phi: 0.3}, {K: 9, Phi: 0.3}},
	)
}

// Table1Result is the confusion matrix of the AGGLOMERATIVE aggregate on
// Mushrooms (the paper's Table 1).
type Table1Result struct {
	Confusion  *eval.ConfusionMatrix
	ClassNames []string
	K          int
	Err        float64
}

// Table1Confusion reproduces Table 1: cluster the Mushrooms stand-in with
// the AGGLOMERATIVE aggregation and cross-tabulate clusters against the
// edible/poisonous classes.
func Table1Confusion(cfg Config) (*Table1Result, error) {
	t := subsample(dataset.SyntheticMushrooms(cfg.seed()), cfg.mushroomsRows(), cfg.seed())
	problem, err := tableProblem(t)
	if err != nil {
		return nil, err
	}
	agg, err := problem.Aggregate(core.MethodAgglomerative, core.AggregateOptions{Materialize: true, Workers: cfg.Workers, Recorder: cfg.Recorder})
	if err != nil {
		return nil, err
	}
	conf, err := eval.Confusion(agg, t.Class)
	if err != nil {
		return nil, err
	}
	ec, err := eval.ClassificationError(agg, t.Class)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Confusion: conf, ClassNames: t.ClassNames, K: agg.K(), Err: ec}, nil
}

// String prints the class × cluster confusion matrix like Table 1.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Agglomerative on Mushrooms: %d clusters, E_C = %s\n", r.K, pct(r.Err))
	fmt.Fprintf(&b, "%-12s", "")
	for i := range r.Confusion.ClusterSizes {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("c%d", i+1))
	}
	b.WriteByte('\n')
	for j, name := range r.ClassNames {
		fmt.Fprintf(&b, "%-12s", name)
		for i := range r.Confusion.ClusterSizes {
			v := 0
			if j < len(r.Confusion.Counts[i]) {
				v = r.Confusion.Counts[i][j]
			}
			fmt.Fprintf(&b, "%8d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
