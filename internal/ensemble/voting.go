package ensemble

import (
	"fmt"
	"sort"

	"clusteragg/internal/partition"
)

// Voting implements consensus by label correspondence and plurality vote,
// the approach of Boulis & Ostendorf (PKDD 2004): the clusters of every
// input are matched to the clusters of a reference clustering, after which
// each object is assigned the label most inputs voted for. Boulis &
// Ostendorf solve the correspondence with linear programming; this
// implementation uses greedy maximum-overlap matching (a documented
// substitution that is exact when the confusion structure is dominated by
// its diagonal, which is the regime voting works in at all).
//
// The reference is the input with k clusters whose own total overlap is
// largest; k is required, inputs with other cluster counts still vote
// through their matched labels. Objects whose labels are Missing in an
// input simply contribute no vote there; an object with no votes at all
// becomes a singleton.
func Voting(clusterings []partition.Labels, k int) (partition.Labels, error) {
	n, err := validate(clusterings, k)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("ensemble: Voting requires k > 0")
	}
	if n == 0 {
		return partition.Labels{}, nil
	}

	norm := make([]partition.Labels, len(clusterings))
	for i, c := range clusterings {
		norm[i] = c.Normalize()
	}

	// Reference: prefer an input with exactly k clusters; otherwise the one
	// whose cluster count is closest to k (ties to the first).
	ref := 0
	bestGap := 1 << 30
	for i, c := range norm {
		gap := c.K() - k
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			ref, bestGap = i, gap
		}
	}

	// Votes[obj][label] accumulated over matched inputs.
	votes := make([][]float64, n)
	for i := range votes {
		votes[i] = make([]float64, k)
	}
	for _, c := range norm {
		match := matchLabels(c, norm[ref], k)
		for obj, l := range c {
			if l == partition.Missing {
				continue
			}
			if target := match[l]; target >= 0 {
				votes[obj][target]++
			}
		}
	}

	labels := make(partition.Labels, n)
	next := k
	for i := range labels {
		best, bestV := -1, 0.0
		for l, v := range votes[i] {
			if v > bestV {
				best, bestV = l, v
			}
		}
		if best == -1 {
			labels[i] = next
			next++
			continue
		}
		labels[i] = best
	}
	return labels.Normalize(), nil
}

// matchLabels greedily matches the clusters of c to the first k clusters of
// ref by descending overlap. Unmatched clusters of c map to their largest-
// overlap reference cluster (many-to-one), or to -1 when they share no
// object with any reference cluster.
func matchLabels(c, ref partition.Labels, k int) map[int]int {
	overlap := make(map[[2]int]int)
	for i := range c {
		if c[i] == partition.Missing || ref[i] == partition.Missing || ref[i] >= k {
			continue
		}
		overlap[[2]int{c[i], ref[i]}]++
	}
	type cell struct {
		from, to, count int
	}
	cells := make([]cell, 0, len(overlap))
	for key, count := range overlap {
		cells = append(cells, cell{from: key[0], to: key[1], count: count})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].count != cells[j].count {
			return cells[i].count > cells[j].count
		}
		if cells[i].from != cells[j].from {
			return cells[i].from < cells[j].from
		}
		return cells[i].to < cells[j].to
	})

	match := make(map[int]int)
	usedTo := make(map[int]bool)
	// One-to-one phase.
	for _, cl := range cells {
		if _, ok := match[cl.from]; ok || usedTo[cl.to] {
			continue
		}
		match[cl.from] = cl.to
		usedTo[cl.to] = true
	}
	// Many-to-one fallback for leftover source clusters.
	for _, cl := range cells {
		if _, ok := match[cl.from]; !ok {
			match[cl.from] = cl.to
		}
	}
	// Clusters overlapping nothing map to -1.
	maxLabel := c.K()
	for l := 0; l < maxLabel; l++ {
		if _, ok := match[l]; !ok {
			match[l] = -1
		}
	}
	return match
}
