package corrclust

import (
	"runtime"
	"strconv"
	"sync"

	"clusteragg/internal/obs"
	"clusteragg/internal/partition"
)

// MatrixFromInstanceParallel materializes an Instance into a Matrix using
// the given number of worker goroutines (0 means GOMAXPROCS). Instance.Dist
// must be safe for concurrent use, which holds for every Instance in this
// repository. Materialization is O(m·n²) work for aggregation problems and
// dominates full-size runs, so it parallelizes almost perfectly.
// Matrix-backed sources (including counting-wrapped ones) skip the workers
// entirely: MatrixFromInstance copies the condensed storage directly.
func MatrixFromInstanceParallel(inst Instance, workers int) *Matrix {
	n := inst.N()
	if mx, _ := matrixFast(inst); mx != nil {
		return MatrixFromInstance(inst) // one condensed copy beats any fan-out
	}
	m := NewMatrix(n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		return MatrixFromInstance(inst)
	}

	// Static row interleaving: row u costs n-1-u entries, so contiguous
	// blocks would be badly imbalanced; striding by worker count balances
	// to within one row. A row-capable oracle fills each row in one bulk
	// call (concurrency-safe by the RowDistancer contract), with the reads
	// charged to any counting layers afterwards in one lump equal to the
	// per-call count.
	rd, charge := rowFast(inst)
	var ids []int
	if rd != nil {
		ids = identity(n)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			obs.Do(obs.ProfLabels{Phase: "materialize", Worker: strconv.Itoa(start)}, func() {
				for u := start; u < n; u += workers {
					row := m.Row(u)
					if rd != nil {
						rd.DistRowTo(u, ids[u+1:], row)
						continue
					}
					for j := range row {
						row[j] = inst.Dist(u, u+1+j)
					}
				}
			})
		}(w)
	}
	wg.Wait()
	if rd != nil {
		charge(pairs(n))
	}
	return m
}

// CostParallel computes Cost with the given number of worker goroutines
// (0 means GOMAXPROCS). Useful for evaluating candidate clusterings on
// full-size instances where the O(n²) pair scan dominates.
func CostParallel(inst Instance, labels partition.Labels, workers int) float64 {
	n := inst.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		return Cost(inst, labels)
	}
	rd, charge := rowFast(inst)
	var ids []int
	if rd != nil {
		ids = identity(n)
	}
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			obs.Do(obs.ProfLabels{Phase: "cost", Worker: strconv.Itoa(idx)}, func() {
				var sum float64
				var buf []float64
				if rd != nil {
					buf = make([]float64, n)
				}
				for u := idx; u < n; u += workers {
					lu := labels[u]
					if rd != nil {
						// Bulk-evaluate the tail; same values and addition
						// order as the per-pair loop below.
						row := buf[:n-1-u]
						rd.DistRowTo(u, ids[u+1:], row)
						tail := labels[u+1:]
						for j, x := range row {
							if lu == tail[j] {
								sum += x
							} else {
								sum += 1 - x
							}
						}
						continue
					}
					for v := u + 1; v < n; v++ {
						x := inst.Dist(u, v)
						if lu == labels[v] {
							sum += x
						} else {
							sum += 1 - x
						}
					}
				}
				partial[idx] = sum
			})
		}(w)
	}
	wg.Wait()
	if rd != nil {
		charge(pairs(n))
	}
	var total float64
	for _, s := range partial {
		total += s
	}
	return total
}

// lsNoMove marks an object whose proposal found no improving move.
const lsNoMove = -2

// proposeMoves evaluates every object's best move against the current
// (frozen) sweep state on contiguous worker stripes. In table mode the
// evaluation reads only the maintained affinity table; in growing and
// rebuild modes each worker gathers rows into its own scratch buffers
// (Instance.Dist is concurrency-safe by contract, and counting layers
// charge atomically). The only shared writes are growing mode's away[v]
// recordings, and each object belongs to exactly one stripe, so stripes
// race nothing and the proposal for each object is exactly what a
// sequential evaluation at pass start would produce. props[v] receives the
// move target (-1 = fresh singleton) or lsNoMove, and gains[v] the move's
// objective improvement (observational — see lsKernel.evaluate).
func (k *lsKernel) proposeMoves(props []int, gains []float64, workers int) {
	chunk := (k.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > k.n {
			hi = k.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			obs.Do(obs.ProfLabels{Phase: "localsearch:propose", Worker: strconv.Itoa(worker)}, func() {
				var row, m []float64
				if !k.tableBuilt {
					row = make([]float64, k.n)
					if !k.growing {
						m = make([]float64, len(k.size))
					}
				}
				for v := lo; v < hi; v++ {
					var target int
					var gain float64
					var ok bool
					switch {
					case k.tableBuilt:
						target, gain, ok = k.evaluate(v)
					case k.growing:
						target, gain, ok = k.evaluateGrowing(v, k.readRowInto(v, row))
					default:
						target, gain, ok = k.evaluateRebuild(v, k.readRowInto(v, row), m)
					}
					if ok {
						props[v], gains[v] = target, gain
					} else {
						props[v] = lsNoMove
					}
				}
			})
		}(w, lo, hi)
	}
	wg.Wait()
	k.proposals += int64(k.n)
}

// sweepParallel is one propose/validate pass: proposals are computed in
// parallel against the frozen pass-start state, then validated and applied
// sequentially in object order. Until the first move is applied the state
// equals the frozen snapshot, so proposals are exact and apply directly;
// from the first applied move on, every later object is re-evaluated
// against the live state before deciding. The pass therefore makes — float
// for float — the same decisions as sweepSequential, for every worker
// count; the parallel phase only pre-pays evaluation work that stays valid.
func (k *lsKernel) sweepParallel(props []int, gains []float64, workers int, onMove func(v, from, to int)) bool {
	k.maybeBuildTable()
	k.proposeMoves(props, gains, workers)
	improved := false
	movedSince := false
	for v := 0; v < k.n; v++ {
		target := props[v]
		gain := gains[v]
		if movedSince {
			var ok bool
			target, gain, ok = k.evalSeq(v)
			if !ok {
				continue
			}
		} else if target == lsNoMove {
			continue
		}
		from := k.labels[v]
		k.apply(v, target)
		k.improvement += gain
		movedSince = true
		improved = true
		if onMove != nil {
			onMove(v, from, k.labels[v])
		}
	}
	return improved
}
