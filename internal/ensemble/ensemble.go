// Package ensemble implements the consensus-clustering methods from the
// related-work line the paper positions itself against (Section 6), so the
// paper's aggregation algorithms can be compared against their actual
// competitors:
//
//   - EvidenceAccumulation — Fred & Jain (ICPR 2002): single linkage over
//     the co-association matrix, cut at the requested k or at the
//     maximum-lifetime gap.
//   - CSPA — Strehl & Ghosh (JMLR 2002): cluster-based similarity
//     partitioning; the similarity matrix is partitioned into exactly k
//     groups (here with average-linkage agglomeration in place of the
//     original METIS call — a documented substitution).
//   - MCLA — Strehl & Ghosh (JMLR 2002): meta-clustering of the input
//     clusters by Jaccard similarity, followed by per-object majority
//     assignment to meta-clusters.
//   - EMConsensus — Topchy, Jain & Punch (SDM 2004): maximum-likelihood
//     consensus via EM over a mixture of multinomial label generators.
//
// All methods require the target number of clusters k, which is the key
// contrast with the paper's parameter-free aggregation algorithms.
package ensemble

import (
	"errors"
	"fmt"
	"sort"

	"clusteragg/internal/corrclust"
	"clusteragg/internal/partition"
)

// ErrNoClusterings is returned when no input clusterings are supplied.
var ErrNoClusterings = errors.New("ensemble: no input clusterings")

// validate checks the shared preconditions and returns n.
func validate(clusterings []partition.Labels, k int) (int, error) {
	if len(clusterings) == 0 {
		return 0, ErrNoClusterings
	}
	n := len(clusterings[0])
	for i, c := range clusterings {
		if len(c) != n {
			return 0, fmt.Errorf("ensemble: clustering %d has %d objects, want %d: %w",
				i, len(c), n, partition.ErrLengthMismatch)
		}
		if err := c.Validate(); err != nil {
			return 0, fmt.Errorf("ensemble: clustering %d: %w", i, err)
		}
	}
	if k < 0 || k > n {
		return 0, fmt.Errorf("ensemble: k=%d outside [0,%d]", k, n)
	}
	return n, nil
}

// coassociation returns the co-association distance matrix: 1 − (fraction
// of clusterings placing the pair together, among those with an opinion).
// Pairs with no opinion at all get distance 1/2.
func coassociation(clusterings []partition.Labels, n int) *corrclust.Matrix {
	m := corrclust.NewMatrix(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			together, votes := 0, 0
			for _, c := range clusterings {
				lu, lv := c[u], c[v]
				if lu == partition.Missing || lv == partition.Missing {
					continue
				}
				votes++
				if lu == lv {
					together++
				}
			}
			d := 0.5
			if votes > 0 {
				d = 1 - float64(together)/float64(votes)
			}
			m.Set(u, v, d)
		}
	}
	return m
}

// EvidenceAccumulation runs Fred & Jain's evidence-accumulation consensus:
// single linkage over the co-association matrix, cut into k clusters, or —
// with k = 0 — cut at the largest "lifetime" gap of the dendrogram (their
// automatic cluster-count criterion).
func EvidenceAccumulation(clusterings []partition.Labels, k int) (partition.Labels, error) {
	n, err := validate(clusterings, k)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return partition.Labels{}, nil
	}
	dist := coassociation(clusterings, n)

	// Single linkage == cutting the largest edges of a minimum spanning
	// tree. Prim's algorithm, O(n²).
	parentEdge := make([]float64, n) // weight of the MST edge attaching i
	parentOf := make([]int, n)
	inTree := make([]bool, n)
	best := make([]float64, n)
	for i := range best {
		best[i] = 2 // > any distance
		parentOf[i] = -1
	}
	best[0] = 0
	for range parentEdge {
		u, ud := -1, 3.0
		for i := 0; i < n; i++ {
			if !inTree[i] && best[i] < ud {
				u, ud = i, best[i]
			}
		}
		inTree[u] = true
		parentEdge[u] = best[u]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := dist.Dist(u, v); d < best[v] {
					best[v] = d
					parentOf[v] = u
				}
			}
		}
	}

	// Sort the n-1 MST edges (node 0 has no parent edge).
	type edge struct {
		node   int
		weight float64
	}
	edges := make([]edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, edge{node: i, weight: parentEdge[i]})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].weight < edges[j].weight })

	cut := k - 1 // number of largest edges to remove
	if k == 0 {
		// Lifetime criterion: cut where consecutive sorted merge weights
		// jump the most. Merging at weight w_i and next at w_{i+1}: the
		// clustering "alive" between them has n-1-i clusters; pick the
		// largest gap.
		bestGap, bestIdx := -1.0, len(edges) // default: no cut, one cluster
		for i := 0; i+1 < len(edges); i++ {
			if gap := edges[i+1].weight - edges[i].weight; gap > bestGap {
				bestGap, bestIdx = gap, i+1
			}
		}
		cut = len(edges) - bestIdx
	}
	if cut < 0 {
		cut = 0
	}
	if cut > len(edges) {
		cut = len(edges)
	}

	// Union-find over the kept edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges[:len(edges)-cut] {
		a, b := find(e.node), find(parentOf[e.node])
		if a != b {
			parent[a] = b
		}
	}
	labels := make(partition.Labels, n)
	for i := range labels {
		labels[i] = find(i)
	}
	return labels.Normalize(), nil
}

// CSPA runs the cluster-based similarity partitioning of Strehl & Ghosh:
// the pairwise co-association similarity is treated as a graph and
// partitioned into exactly k clusters. The original uses METIS; this
// implementation substitutes average-linkage agglomeration on the
// co-association distances, the standard library-free instantiation.
func CSPA(clusterings []partition.Labels, k int) (partition.Labels, error) {
	n, err := validate(clusterings, k)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, fmt.Errorf("ensemble: CSPA requires k > 0")
	}
	if n == 0 {
		return partition.Labels{}, nil
	}
	dist := coassociation(clusterings, n)
	return corrclust.AgglomerativeK(dist, k), nil
}
