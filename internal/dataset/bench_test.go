package dataset

import (
	"fmt"
	"strings"
	"testing"
)

// benchCSV builds an in-memory CSV in the shape the loader actually meets:
// mostly low-cardinality categorical columns with heavily repeated values
// (the regime the bounded intern table and ReuseRecord target), one numeric
// column, one class column, and a sprinkle of missing tokens.
func benchCSV(rows int) string {
	var sb strings.Builder
	sb.WriteString("a,b,c,d,e,f,num,class\n")
	for r := 0; r < rows; r++ {
		for c := 0; c < 6; c++ {
			if (r+c)%97 == 0 {
				sb.WriteString("?,")
				continue
			}
			fmt.Fprintf(&sb, "val%d,", (r*7+c*3)%(8+c))
		}
		fmt.Fprintf(&sb, "%d.5,c%d\n", r%13, r%3)
	}
	return sb.String()
}

// BenchmarkReadCSV pins the loader's speed and allocation profile (run with
// -benchmem): one streamed pass with a reused record buffer and bounded
// interning should allocate O(columns · distinct values) strings, not
// O(cells). docs/PERFORMANCE.md records the before/after numbers.
func BenchmarkReadCSV(b *testing.B) {
	data := benchCSV(20_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := ReadCSV(strings.NewReader(data), CSVOptions{
			Name: "bench", HasHeader: true, ClassColumn: "class",
		})
		if err != nil {
			b.Fatal(err)
		}
		if t.N() != 20_000 {
			b.Fatalf("rows = %d", t.N())
		}
	}
}

// BenchmarkReadCSVParallel pins the chunked parallel reader on the same
// workload as BenchmarkReadCSV, across worker counts. On a single-core
// machine workers>1 mostly measures the chunking/merge overhead; the
// interesting comparison is against BenchmarkReadCSV's sequential pass
// (docs/PERFORMANCE.md's Ingest table).
func BenchmarkReadCSVParallel(b *testing.B) {
	data := benchCSV(20_000)
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t, err := ReadCSVParallel(strings.NewReader(data), CSVOptions{
					Name: "bench", HasHeader: true, ClassColumn: "class", Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if t.N() != 20_000 {
					b.Fatalf("rows = %d", t.N())
				}
			}
		})
	}
}

// TestReadCSVInternAllocs pins the interning reader's allocation shape: on
// a repeated-value table the per-parse allocation count must scale with
// distinct values and rows (slice growth), not with cells — the pre-intern
// reader allocated one string per cell (~2 allocs/cell end to end), so the
// pin at well under one alloc per cell fails on any regression to that.
func TestReadCSVInternAllocs(t *testing.T) {
	const rows = 2000
	data := benchCSV(rows)
	cells := rows * 8
	allocs := testing.AllocsPerRun(5, func() {
		tab, err := ReadCSV(strings.NewReader(data), CSVOptions{
			Name: "pin", HasHeader: true, ClassColumn: "class",
		})
		if err != nil {
			t.Fatal(err)
		}
		if tab.N() != rows {
			t.Fatalf("rows = %d", tab.N())
		}
	})
	if perCell := allocs / float64(cells); perCell > 0.5 {
		t.Errorf("ReadCSV allocates %.0f objects (%.2f per cell) on %d cells; interning should keep this well under one per cell", allocs, perCell, cells)
	}
}
