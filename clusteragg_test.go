package clusteragg_test

import (
	"fmt"
	"log"
	"math"
	"strings"
	"testing"

	"clusteragg"
)

func TestFacadeFigure1(t *testing.T) {
	problem, err := clusteragg.NewProblem([]clusteragg.Labels{
		{0, 0, 1, 1, 2, 2},
		{0, 1, 0, 1, 2, 3},
		{0, 1, 0, 1, 2, 2},
	}, clusteragg.ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range append(clusteragg.Methods(), clusteragg.ExtensionMethods()...) {
		if method == clusteragg.MethodBalls {
			continue // needs alpha=0.4 on this tiny instance
		}
		labels, err := problem.Aggregate(method, clusteragg.AggregateOptions{})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if d := problem.Disagreement(labels); math.Abs(d-5) > 1e-9 {
			t.Errorf("%v: disagreement %v, want 5", method, d)
		}
	}
}

func TestFacadeDistanceHelpers(t *testing.T) {
	a := clusteragg.Labels{0, 0, 1}
	b := clusteragg.Labels{0, 1, 1}
	d, err := clusteragg.Distance(a, b)
	if err != nil || d != 2 {
		t.Errorf("Distance = %d, %v", d, err)
	}
	ri, err := clusteragg.RandIndex(a, a)
	if err != nil || ri != 1 {
		t.Errorf("RandIndex = %v, %v", ri, err)
	}
	if clusteragg.Missing != -1 {
		t.Error("Missing constant drifted")
	}
}

func TestAggregateCSV(t *testing.T) {
	csv := "a,b,class\nx,p,A\nx,p,A\ny,q,B\ny,q,B\n"
	res, err := clusteragg.AggregateCSV(strings.NewReader(csv), clusteragg.CSVOptions{
		HasHeader:   true,
		ClassColumn: "class",
		Method:      clusteragg.MethodAgglomerative,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.K() != 2 {
		t.Errorf("K = %d, want 2", res.Labels.K())
	}
	if res.Disagreement != 0 {
		t.Errorf("disagreement %v, want 0 on unanimous attributes", res.Disagreement)
	}
	if res.Attributes != 2 {
		t.Errorf("attributes = %d, want 2 (class excluded)", res.Attributes)
	}
	if len(res.Class) != 4 {
		t.Errorf("class labels = %v", res.Class)
	}
}

func TestAggregateCSVSampling(t *testing.T) {
	var b strings.Builder
	b.WriteString("a\n")
	for i := 0; i < 80; i++ {
		if i%2 == 0 {
			b.WriteString("x\n")
		} else {
			b.WriteString("y\n")
		}
	}
	res, err := clusteragg.AggregateCSV(strings.NewReader(b.String()), clusteragg.CSVOptions{
		HasHeader:  true,
		Method:     clusteragg.MethodFurthest,
		SampleSize: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.K() != 2 {
		t.Errorf("sampled K = %d, want 2", res.Labels.K())
	}
}

func TestAggregateCSVErrors(t *testing.T) {
	if _, err := clusteragg.AggregateCSV(strings.NewReader(""), clusteragg.CSVOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := clusteragg.AggregateCSV(strings.NewReader("1\n2\n"), clusteragg.CSVOptions{}); err == nil {
		t.Error("numeric-only input accepted")
	}
}

// The package-level example shown in godoc.
func Example() {
	problem, err := clusteragg.NewProblem([]clusteragg.Labels{
		{0, 0, 1, 1, 2, 2},
		{0, 1, 0, 1, 2, 3},
		{0, 1, 0, 1, 2, 2},
	}, clusteragg.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	labels, err := problem.Aggregate(clusteragg.MethodAgglomerative, clusteragg.AggregateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(labels, problem.Disagreement(labels))
	// Output: [0 1 0 1 2 2] 5
}
