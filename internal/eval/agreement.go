package eval

import (
	"math"

	"clusteragg/internal/partition"
)

// AdjustedRandIndex returns the Rand index corrected for chance (Hubert &
// Arabie): 1 for identical clusterings, ~0 for independent ones, possibly
// negative for worse-than-chance agreement. Objects with Missing labels on
// either side are excluded. Degenerate cases where the expected index
// equals the maximum (both clusterings trivial) return 1.
func AdjustedRandIndex(a, b partition.Labels) (float64, error) {
	t, err := partition.Contingency(a, b)
	if err != nil {
		return 0, err
	}
	if t.N < 2 {
		return 1, nil
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for i, row := range t.Counts {
		sumRows += choose2(t.RowSums[i])
		for _, c := range row {
			sumCells += choose2(c)
		}
	}
	for _, c := range t.ColSums {
		sumCols += choose2(c)
	}
	total := choose2(t.N)
	expected := sumRows * sumCols / total
	maximum := (sumRows + sumCols) / 2
	if maximum == expected {
		return 1, nil
	}
	return (sumCells - expected) / (maximum - expected), nil
}

// VariationOfInformation returns Meilă's VI distance between two
// clusterings: H(A|B) + H(B|A), in nats. It is a true metric on the space
// of clusterings; 0 means identical. Objects with Missing labels on either
// side are excluded.
func VariationOfInformation(a, b partition.Labels) (float64, error) {
	t, err := partition.Contingency(a, b)
	if err != nil {
		return 0, err
	}
	if t.N == 0 {
		return 0, nil
	}
	n := float64(t.N)
	var ha, hb, mi float64
	for _, s := range t.RowSums {
		if s > 0 {
			p := float64(s) / n
			ha -= p * math.Log(p)
		}
	}
	for _, s := range t.ColSums {
		if s > 0 {
			p := float64(s) / n
			hb -= p * math.Log(p)
		}
	}
	for i, row := range t.Counts {
		for j, c := range row {
			if c == 0 {
				continue
			}
			pij := float64(c) / n
			pi := float64(t.RowSums[i]) / n
			pj := float64(t.ColSums[j]) / n
			mi += pij * math.Log(pij/(pi*pj))
		}
	}
	vi := ha + hb - 2*mi
	if vi < 0 {
		vi = 0 // numeric guard
	}
	return vi, nil
}
