package dataset

import (
	"math"
	"strings"
	"testing"

	"clusteragg/internal/partition"
)

func TestReadCSVBasics(t *testing.T) {
	in := "color,size,weight,class\nred,big,1.5,A\nblue,small,2.0,B\nred,?,?,A\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{
		Name: "t", HasHeader: true, ClassColumn: "class",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != 3 {
		t.Fatalf("N = %d, want 3", tab.N())
	}
	if len(tab.Cols) != 3 {
		t.Fatalf("%d columns, want 3 (class excluded)", len(tab.Cols))
	}
	color := tab.Column("color")
	if color == nil || color.Kind != Categorical {
		t.Fatal("color column wrong")
	}
	if color.Cardinality() != 2 {
		t.Errorf("color cardinality %d, want 2", color.Cardinality())
	}
	size := tab.Column("size")
	if size.MissingCount() != 1 {
		t.Errorf("size missing = %d, want 1", size.MissingCount())
	}
	weight := tab.Column("weight")
	if weight.Kind != Numeric {
		t.Error("weight not inferred numeric")
	}
	if !math.IsNaN(weight.Floats[2]) {
		t.Error("missing numeric not NaN")
	}
	if len(tab.Class) != 3 || tab.Class[0] != 0 || tab.Class[1] != 1 || tab.Class[2] != 0 {
		t.Errorf("class labels = %v", tab.Class)
	}
	if tab.ClassNames[0] != "A" || tab.ClassNames[1] != "B" {
		t.Errorf("class names = %v", tab.ClassNames)
	}
	if tab.MissingTotal() != 2 {
		t.Errorf("MissingTotal = %d, want 2", tab.MissingTotal())
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader("a,1\nb,2\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("col0") == nil || tab.Column("col1") == nil {
		t.Error("default column names missing")
	}
	if tab.Column("col1").Kind != Numeric {
		t.Error("col1 not numeric")
	}
}

func TestReadCSVForcedKinds(t *testing.T) {
	in := "zip,score\n02139,1\n10001,2\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{
		HasHeader:          true,
		CategoricalColumns: []string{"zip"},
		NumericColumns:     []string{"score"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("zip").Kind != Categorical {
		t.Error("zip forced categorical ignored")
	}
	if tab.Column("score").Kind != Numeric {
		t.Error("score forced numeric ignored")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), CSVOptions{HasHeader: true}); err == nil {
		t.Error("header-only input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), CSVOptions{HasHeader: true}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), CSVOptions{HasHeader: true, ClassColumn: "nope"}); err == nil {
		t.Error("unknown class column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,class\n1,?\n"), CSVOptions{HasHeader: true, ClassColumn: "class"}); err == nil {
		t.Error("missing class label accepted")
	}
}

func TestReadCSVTrimSpace(t *testing.T) {
	in := "a, b\n x , 1 \n y , 2 \n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{HasHeader: true, TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Cols[0].Names[0] != "x" {
		t.Errorf("value not trimmed: %q", tab.Cols[0].Names[0])
	}
}

func TestColumnClustering(t *testing.T) {
	c := &Column{Name: "c", Kind: Categorical, Values: []int{1, 0, 1, MissingValue}, Names: []string{"a", "b"}}
	labels, err := c.Clustering()
	if err != nil {
		t.Fatal(err)
	}
	want := partition.Labels{0, 1, 0, partition.Missing}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Clustering = %v, want %v", labels, want)
		}
	}
	num := &Column{Name: "n", Kind: Numeric, Floats: []float64{1}}
	if _, err := num.Clustering(); err == nil {
		t.Error("numeric column clustering accepted")
	}
}

func TestTableClusterings(t *testing.T) {
	tab := SyntheticVotes(1)
	cs, err := tab.Clusterings()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 16 {
		t.Fatalf("%d clusterings, want 16", len(cs))
	}
	for i, c := range cs {
		if len(c) != 435 {
			t.Fatalf("clustering %d has %d labels", i, len(c))
		}
	}
	empty := &Table{Name: "e", Cols: []*Column{{Name: "n", Kind: Numeric, Floats: []float64{1}}}}
	if _, err := empty.Clusterings(); err == nil {
		t.Error("numeric-only table clusterings accepted")
	}
}

func TestSubset(t *testing.T) {
	tab := SyntheticVotes(1)
	sub := tab.Subset([]int{0, 10, 20})
	if sub.N() != 3 {
		t.Fatalf("subset N = %d", sub.N())
	}
	if sub.Class[1] != tab.Class[10] {
		t.Error("class not carried through subset")
	}
	if sub.Cols[3].Values[2] != tab.Cols[3].Values[20] {
		t.Error("values not carried through subset")
	}
}

func TestSyntheticVotesShape(t *testing.T) {
	tab := SyntheticVotes(42)
	if tab.N() != 435 {
		t.Errorf("N = %d, want 435", tab.N())
	}
	if got := len(tab.CategoricalColumns()); got != 16 {
		t.Errorf("%d categorical columns, want 16", got)
	}
	if got := tab.MissingTotal(); got != 288 {
		t.Errorf("missing = %d, want 288", got)
	}
	dem, rep := 0, 0
	for _, c := range tab.Class {
		if c == 0 {
			dem++
		} else {
			rep++
		}
	}
	if dem != 267 || rep != 168 {
		t.Errorf("class mixture %d/%d, want 267/168", dem, rep)
	}
	for _, c := range tab.CategoricalColumns() {
		if c.Cardinality() != 2 {
			t.Errorf("column %s cardinality %d, want 2", c.Name, c.Cardinality())
		}
	}
}

func TestSyntheticMushroomsShape(t *testing.T) {
	tab := SyntheticMushrooms(42)
	if tab.N() != 8124 {
		t.Errorf("N = %d, want 8124", tab.N())
	}
	if got := len(tab.CategoricalColumns()); got != 22 {
		t.Errorf("%d categorical columns, want 22", got)
	}
	if got := tab.MissingTotal(); got != 2480 {
		t.Errorf("missing = %d, want 2480", got)
	}
	edible, poisonous := 0, 0
	for _, c := range tab.Class {
		if c == 0 {
			edible++
		} else {
			poisonous++
		}
	}
	if edible+poisonous != 8124 {
		t.Fatal("class labels incomplete")
	}
	// Real data: 4208 edible / 3916 poisonous; the stand-in should be close.
	if edible < 4000 || edible > 4400 {
		t.Errorf("edible = %d, want ~4208", edible)
	}
}

func TestSyntheticCensusShape(t *testing.T) {
	tab := SyntheticCensus(42, 5000)
	if tab.N() != 5000 {
		t.Errorf("N = %d, want 5000", tab.N())
	}
	if got := len(tab.CategoricalColumns()); got != 8 {
		t.Errorf("%d categorical columns, want 8", got)
	}
	rich := 0
	for _, c := range tab.Class {
		if c == 1 {
			rich++
		}
	}
	frac := float64(rich) / 5000
	if frac < 0.15 || frac > 0.40 {
		t.Errorf(">50K fraction = %v, want ~0.24", frac)
	}
	// Default row count.
	if def := SyntheticCensus(1, 0); def.N() != SyntheticCensusRows {
		t.Errorf("default census rows = %d, want %d", def.N(), SyntheticCensusRows)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := SyntheticVotes(7)
	b := SyntheticVotes(7)
	for ci := range a.Cols {
		for i := range a.Cols[ci].Values {
			if a.Cols[ci].Values[i] != b.Cols[ci].Values[i] {
				t.Fatalf("column %d row %d differs across identical seeds", ci, i)
			}
		}
	}
}

func TestSyntheticVotesPartisanStructure(t *testing.T) {
	// The two parties must disagree on most issues: the fraction of
	// cross-party pairs separated by an attribute should far exceed the
	// within-party fraction.
	tab := SyntheticVotes(3)
	cs, err := tab.Clusterings()
	if err != nil {
		t.Fatal(err)
	}
	within, cross, withinN, crossN := 0.0, 0.0, 0, 0
	for u := 0; u < tab.N(); u += 7 {
		for v := u + 1; v < tab.N(); v += 7 {
			sep := 0
			valid := 0
			for _, c := range cs {
				if c[u] == partition.Missing || c[v] == partition.Missing {
					continue
				}
				valid++
				if c[u] != c[v] {
					sep++
				}
			}
			if valid == 0 {
				continue
			}
			f := float64(sep) / float64(valid)
			if tab.Class[u] == tab.Class[v] {
				within += f
				withinN++
			} else {
				cross += f
				crossN++
			}
		}
	}
	within /= float64(withinN)
	cross /= float64(crossN)
	if cross < within+0.2 {
		t.Errorf("cross-party separation %v not clearly above within-party %v", cross, within)
	}
}
