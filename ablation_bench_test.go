// Ablation benchmarks for the design choices called out in DESIGN.md:
// the BALLS α parameter (Theorem 1's 1/4 vs the practical 2/5), LOCALSEARCH
// as a post-processing refinement, lazy vs materialized distance oracles,
// the two missing-value models, and the extension algorithms (PIVOT,
// ANNEAL) against the paper's five.
package clusteragg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"clusteragg/internal/core"
	"clusteragg/internal/corrclust"
	"clusteragg/internal/dataset"
	"clusteragg/internal/eval"
	"clusteragg/internal/partition"
)

// votesProblem builds the Votes stand-in aggregation problem once per
// benchmark.
func votesProblem(b *testing.B, mode core.MissingMode) (*core.Problem, *dataset.Table) {
	b.Helper()
	t := dataset.SyntheticVotes(1)
	cs, err := t.Clusterings()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblem(cs, core.ProblemOptions{MissingMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	return p, t
}

// BenchmarkAblationBallsAlpha compares BALLS at α = 1/4 (the value of
// Theorem 1's 3-approximation proof) against α = 2/5 (the paper's practical
// recommendation). Metrics: clusters and E_D at each α — 1/4 splinters the
// data into many singletons, exactly the behaviour Section 4 reports.
func BenchmarkAblationBallsAlpha(b *testing.B) {
	for _, alpha := range []float64{corrclust.DefaultBallsAlpha, corrclust.RecommendedBallsAlpha} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			p, tab := votesProblem(b, core.MissingCoin)
			m := p.Matrix()
			for i := 0; i < b.N; i++ {
				labels, err := corrclust.Balls(m, alpha)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					ec, _ := eval.ClassificationError(labels, tab.Class)
					b.ReportMetric(float64(labels.K()), "clusters")
					b.ReportMetric(p.Disagreement(labels), "E_D")
					b.ReportMetric(100*ec, "err-%")
				}
			}
		})
	}
}

// BenchmarkAblationBallsOrdering ablates the BALLS visiting order: the
// paper's weight-sorted heuristic vs natural index order. Metric: E_D under
// each ordering.
func BenchmarkAblationBallsOrdering(b *testing.B) {
	for _, tc := range []struct {
		name   string
		sorted bool
	}{{"weight-sorted", true}, {"index-order", false}} {
		b.Run(tc.name, func(b *testing.B) {
			p, _ := votesProblem(b, core.MissingCoin)
			m := p.Matrix()
			n := m.N()
			for i := 0; i < b.N; i++ {
				var labels partition.Labels
				var err error
				if tc.sorted {
					labels, err = corrclust.Balls(m, 0.4)
				} else {
					order := make([]int, n)
					for j := range order {
						order[j] = j
					}
					labels, err = corrclust.BallsWithOrder(m, 0.4, order)
				}
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(p.Disagreement(labels), "E_D")
					b.ReportMetric(float64(labels.K()), "clusters")
				}
			}
		})
	}
}

// BenchmarkAblationRefine measures what the LOCALSEARCH post-processing
// pass buys each algorithm (Section 4 suggests it as a refinement step).
// Metric: E_D before and after refinement.
func BenchmarkAblationRefine(b *testing.B) {
	for _, method := range []core.Method{core.MethodBalls, core.MethodAgglomerative, core.MethodFurthest} {
		b.Run(method.String(), func(b *testing.B) {
			p, _ := votesProblem(b, core.MissingCoin)
			for i := 0; i < b.N; i++ {
				plain, err := p.Aggregate(method, core.AggregateOptions{
					BallsAlpha: core.Alpha(0.4), Materialize: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				refined, err := p.Aggregate(method, core.AggregateOptions{
					BallsAlpha: core.Alpha(0.4), Materialize: true, Refine: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(p.Disagreement(plain), "E_D-plain")
					b.ReportMetric(p.Disagreement(refined), "E_D-refined")
				}
			}
		})
	}
}

// BenchmarkAblationMaterialize times LOCALSEARCH against the lazy O(m)
// distance oracle vs the materialized matrix — the Materialize option's
// time/space trade-off.
func BenchmarkAblationMaterialize(b *testing.B) {
	for _, materialize := range []bool{false, true} {
		name := "lazy"
		if materialize {
			name = "matrix"
		}
		b.Run(name, func(b *testing.B) {
			p, _ := votesProblem(b, core.MissingCoin)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Aggregate(core.MethodLocalSearch, core.AggregateOptions{
					Materialize: materialize,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMissingMode compares the paper's adopted coin model
// against the "let the remaining attributes decide" averaging model on the
// Votes stand-in (288 missing values). Metrics: E_C and clusters per mode.
func BenchmarkAblationMissingMode(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode core.MissingMode
	}{{"coin", core.MissingCoin}, {"average", core.MissingAverage}} {
		b.Run(tc.name, func(b *testing.B) {
			p, tab := votesProblem(b, tc.mode)
			for i := 0; i < b.N; i++ {
				labels, err := p.Aggregate(core.MethodAgglomerative, core.AggregateOptions{Materialize: true})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					ec, _ := eval.ClassificationError(labels, tab.Class)
					b.ReportMetric(100*ec, "err-%")
					b.ReportMetric(float64(labels.K()), "clusters")
				}
			}
		})
	}
}

// BenchmarkAblationExtensions runs the extension algorithms (PIVOT with 10
// rounds, ANNEAL) against the paper's LOCALSEARCH on the Votes stand-in.
// Metric: E_D — the extensions should land in the same band at a fraction
// (PIVOT) or multiple (ANNEAL) of the cost.
func BenchmarkAblationExtensions(b *testing.B) {
	methods := append([]core.Method{core.MethodLocalSearch}, core.ExtensionMethods()...)
	for _, method := range methods {
		b.Run(method.String(), func(b *testing.B) {
			p, _ := votesProblem(b, core.MissingCoin)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				labels, err := p.Aggregate(method, core.AggregateOptions{
					Materialize: true,
					Rand:        rand.New(rand.NewSource(int64(i + 1))),
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(p.Disagreement(labels), "E_D")
					b.ReportMetric(float64(labels.K()), "clusters")
				}
			}
		})
	}
}

// BenchmarkAlgorithmsScaling times each correlation-clustering algorithm on
// materialized random aggregation instances of growing size, exposing the
// asymptotic differences Section 4 states (Balls/Agglomerative O(n²) vs
// Furthest O(k²n) vs LocalSearch O(I·n²)).
func BenchmarkAlgorithmsScaling(b *testing.B) {
	for _, n := range []int{100, 300, 600} {
		inst := randomInstance(b, n)
		b.Run(fmt.Sprintf("balls/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corrclust.Balls(inst, 0.4); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("agglomerative/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				corrclust.Agglomerative(inst)
			}
		})
		b.Run(fmt.Sprintf("furthest/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				corrclust.Furthest(inst)
			}
		})
		b.Run(fmt.Sprintf("localsearch/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				corrclust.LocalSearch(inst, corrclust.LocalSearchOptions{})
			}
		})
		b.Run(fmt.Sprintf("pivot/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				corrclust.Pivot(inst, rand.New(rand.NewSource(int64(i))))
			}
		})
	}
}

// randomInstance builds a materialized aggregation-induced instance with a
// planted 4-cluster structure plus noise.
func randomInstance(b *testing.B, n int) *corrclust.Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	m := 8
	clusterings := make([][]int, m)
	for i := range clusterings {
		c := make([]int, n)
		for j := range c {
			c[j] = j % 4
			if rng.Float64() < 0.15 {
				c[j] = rng.Intn(4)
			}
		}
		clusterings[i] = c
	}
	mat := corrclust.NewMatrix(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			sep := 0
			for _, c := range clusterings {
				if c[u] != c[v] {
					sep++
				}
			}
			if err := mat.Set(u, v, float64(sep)/float64(m)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return mat
}
