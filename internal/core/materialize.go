package core

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"clusteragg/internal/corrclust"
	"clusteragg/internal/obs"
	"clusteragg/internal/partition"
)

// This file is the cluster-block materialization kernel: it builds the dense
// distance matrix clustering-by-clustering from cluster membership lists
// instead of calling Problem.Dist once per pair.
//
// The naive build costs O(m·n²): every pair probes Dist, and every probe is
// a branchy O(m) loop over the input clusterings through an interface call.
// The block kernel inverts the loops. Every pair starts from the
// "all clusterings separate it" weight; then each input clustering subtracts
// its co-membership blocks (pairs it places together) and adjusts the pairs
// it is missing on. A clustering with clusters of sizes |c| touches
// Σ_c |c|(|c|-1)/2 pairs plus its missing rows, so the total work is
// O(n² + m·Σ_c|c|²) sequential float adds on contiguous rows — for m
// clusterings of ~k even clusters, a ~k× algorithmic win over the naive
// scan on top of removing the per-pair interface call. See
// docs/PERFORMANCE.md for the derivation and equivalence argument.
//
// Work is split across row-stripe workers exactly like
// corrclust.MatrixFromInstanceParallel: worker w owns rows u ≡ w (mod
// workers), every pair {u,v} belongs to row min(u,v), and each worker
// applies the per-clustering updates to its own rows in the same order a
// sequential build would, so the result is bit-identical for every worker
// count.

// materializeMinParallel is the matrix size below which the build runs on a
// single stripe (goroutine overhead dominates under it).
const materializeMinParallel = 256

// clusteringBlocks is one input clustering reshaped for the block kernel.
type clusteringBlocks struct {
	// members lists the objects of each cluster (present labels only),
	// ascending within a cluster.
	members [][]int
	// missing lists the objects the clustering has no label for, ascending;
	// mask is the same set as a bitmap (nil when the clustering is
	// complete).
	missing []int
	mask    []bool
	// weight is the clustering's weight in the objective.
	weight float64
}

// blocksOf reshapes the input clusterings into per-cluster member lists and
// missing sets. Packed problems unpack []int views first (cached on the
// Problem) — materialization is only ever applied to small subproblems on
// the sampling path, so the views stay proportional to the sample, not n.
func (p *Problem) blocksOf() []clusteringBlocks {
	cs := p.labelViews()
	blocks := make([]clusteringBlocks, len(cs))
	for i, c := range cs {
		b := clusteringBlocks{weight: p.weight(i)}
		k := 0
		for _, l := range c {
			if l >= k {
				k = l + 1
			}
		}
		b.members = make([][]int, k)
		for obj, l := range c {
			if l == partition.Missing {
				if b.mask == nil {
					b.mask = make([]bool, p.n)
				}
				b.mask[obj] = true
				b.missing = append(b.missing, obj)
			} else {
				b.members[l] = append(b.members[l], obj)
			}
		}
		blocks[i] = b
	}
	return blocks
}

// blockAdds returns the number of per-pair block updates the kernel will
// perform for these blocks: co-membership pairs plus pairs with a missing
// endpoint, per clustering.
func blockAdds(n int, blocks []clusteringBlocks) int64 {
	var adds int64
	for _, b := range blocks {
		for _, mem := range b.members {
			adds += int64(len(mem)) * int64(len(mem)-1) / 2
		}
		if z := int64(len(b.missing)); z > 0 {
			present := int64(n) - z
			adds += z*(z-1)/2 + z*present
		}
	}
	return adds
}

// Matrix materializes the pairwise distances into a dense matrix through the
// cluster-block kernel, running on all CPUs for large instances. Algorithms
// that probe distances many times (LOCALSEARCH, FURTHEST) run substantially
// faster on the materialized form; the cost is O(n² + m·Σ_c|c|²) time and
// O(n²) space.
func (p *Problem) Matrix() *corrclust.Matrix {
	return p.materialize(nil, 0)
}

// MatrixWorkers is Matrix with an explicit worker cap (0 means GOMAXPROCS).
func (p *Problem) MatrixWorkers(workers int) *corrclust.Matrix {
	return p.materialize(nil, workers)
}

// materialize is the block-kernel entry point. rec (may be nil) receives
// the materialize.* counters: cells (stored pairs), block_adds (per-pair
// block updates), workers (effective stripe count), and dist_probes —
// registered at zero because the kernel makes no Dist calls, so trajectory
// diffs against the probing build show the drop explicitly. Each build's
// wall time lands in the materialize.seconds latency histogram (SAMPLING
// materializes repeatedly — the core, the recluster, recursive calls — so
// the distribution is worth more than one number).
func (p *Problem) materialize(rec *obs.Recorder, workers int) *corrclust.Matrix {
	if rec != nil {
		start := time.Now()
		defer func() {
			rec.Observe("materialize.seconds", time.Since(start).Seconds())
		}()
	}
	n := p.n
	mx := corrclust.NewMatrix(n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 || n < materializeMinParallel {
		workers = 1
	}
	blocks := p.blocksOf()
	average := p.missingMode == MissingAverage && p.hasMissing(blocks)

	rec.Add("materialize.dist_probes", 0)
	rec.Add("materialize.cells", int64(n)*int64(n-1)/2)
	rec.Add("materialize.block_adds", blockAdds(n, blocks))
	rec.Add("materialize.workers", int64(workers))

	var votes []float64
	var missCnt []int32
	if average {
		votes = make([]float64, int64(n)*int64(n-1)/2)
		missCnt = make([]int32, int64(n)*int64(n-1)/2)
	}

	if workers == 1 {
		p.materializeStripe(mx, blocks, votes, missCnt, 0, 1)
		return mx
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			obs.Do(obs.ProfLabels{Phase: "materialize", Worker: strconv.Itoa(stripe)}, func() {
				p.materializeStripe(mx, blocks, votes, missCnt, stripe, workers)
			})
		}(w)
	}
	wg.Wait()
	return mx
}

// hasMissing reports whether any input clustering has missing labels.
func (p *Problem) hasMissing(blocks []clusteringBlocks) bool {
	for _, b := range blocks {
		if len(b.missing) > 0 {
			return true
		}
	}
	return false
}

// materializeStripe builds rows u ≡ stripe (mod workers) of the matrix.
// votes/missCnt are non-nil only in MissingAverage mode with missing values
// present; without missing values the two modes define the same distance,
// so the coin arithmetic serves both.
func (p *Problem) materializeStripe(mx *corrclust.Matrix, blocks []clusteringBlocks, votes []float64, missCnt []int32, stripe, workers int) {
	n, tw := p.n, p.totalWeight
	average := votes != nil

	// rowBase(u) mirrors the condensed layout so votes/missCnt rows line up
	// with mx.Row(u).
	rowBase := func(u int) int { return u * (2*n - u - 1) / 2 }

	// Seed: every pair starts fully separated — distance weight tw, and in
	// average mode tw vote weight from all clusterings.
	for u := stripe; u < n; u += workers {
		row := mx.Row(u)
		for j := range row {
			row[j] = tw
		}
		if average {
			vrow := votes[rowBase(u) : rowBase(u)+len(row)]
			for j := range vrow {
				vrow[j] = tw
			}
		}
	}

	for _, b := range blocks {
		w := b.weight
		// Co-membership blocks: pairs the clustering places together do not
		// separate, so they give back w.
		for _, mem := range b.members {
			for i, u := range mem {
				if u%workers != stripe {
					continue
				}
				row := mx.Row(u)
				for _, v := range mem[i+1:] {
					row[v-u-1] -= w
				}
			}
		}
		if len(b.missing) == 0 {
			continue
		}
		// Missing adjustments, owner-row form: pair {u,v} (u < v) has a
		// missing endpoint iff u is missing (the whole row tail) or v is a
		// missing object beyond u (pointer walk over the sorted set).
		//
		// Coin model: the pair reports "together" with probability
		// missingP, so of the seeded w only (1-missingP)·w remains.
		// Average model: the clustering abstains — both its distance and
		// vote weight come back, and the pair's miss count advances toward
		// the "missing everywhere" diagnosis.
		sub := p.missingP * w
		if average {
			sub = w
		}
		zi := 0
		for u := stripe; u < n; u += workers {
			for zi < len(b.missing) && b.missing[zi] <= u {
				zi++
			}
			row := mx.Row(u)
			base := rowBase(u)
			if b.mask[u] {
				for j := range row {
					row[j] -= sub
				}
				if average {
					for j := range row {
						votes[base+j] -= w
						missCnt[base+j]++
					}
				}
			} else {
				for _, z := range b.missing[zi:] {
					row[z-u-1] -= sub
				}
				if average {
					for _, z := range b.missing[zi:] {
						votes[base+z-u-1] -= w
						missCnt[base+z-u-1]++
					}
				}
			}
		}
	}

	// Normalize: coin divides by the total weight; average divides by the
	// per-pair vote weight, with the paper's maximally-uncertain 1/2 for
	// pairs missing from every clustering.
	m32 := int32(p.M())
	for u := stripe; u < n; u += workers {
		row := mx.Row(u)
		if !average {
			for j := range row {
				row[j] /= tw
			}
			continue
		}
		base := rowBase(u)
		for j := range row {
			if missCnt[base+j] == m32 {
				row[j] = 0.5
			} else {
				row[j] /= votes[base+j]
			}
		}
	}
}
