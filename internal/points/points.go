// Package points provides the two-dimensional point workloads used in the
// paper's synthetic experiments: a "perceptually distinct seven cluster"
// scene with the features Figure 3 relies on (narrow bridges between
// clusters, uneven cluster sizes, elongated regions), and Gaussian blobs
// with uniform background noise as in Figures 4 and 5.
package points

import (
	"fmt"
	"math"
	"math/rand"

	"clusteragg/internal/partition"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// SqDist returns the squared Euclidean distance between two points.
func SqDist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Dataset is a labeled point set: Truth[i] is the generating cluster of
// Points[i] (or partition.Missing for background noise points).
type Dataset struct {
	Points []Point
	Truth  partition.Labels
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// gauss draws a point from an axis-aligned Gaussian.
func gauss(rng *rand.Rand, cx, cy, sx, sy float64) Point {
	return Point{X: cx + rng.NormFloat64()*sx, Y: cy + rng.NormFloat64()*sy}
}

// SevenClusterScene generates a deterministic scene with seven perceptually
// distinct groups designed to stress the vanilla algorithms the way
// Figure 3 does: two clusters joined by a narrow bridge of points (breaks
// single linkage), elongated strips (break k-means and complete linkage),
// and strongly uneven cluster sizes (break k-means). scale multiplies the
// number of points in every group (scale 1 ≈ 820 points).
func SevenClusterScene(seed int64, scale float64) *Dataset {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	add := func(cluster int, p Point) {
		d.Points = append(d.Points, p)
		d.Truth = append(d.Truth, cluster)
	}
	count := func(base int) int {
		c := int(math.Round(float64(base) * scale))
		if c < 1 {
			c = 1
		}
		return c
	}

	// 0: large round cluster, upper left.
	for i := 0; i < count(200); i++ {
		add(0, gauss(rng, 2.0, 8.0, 0.55, 0.55))
	}
	// 1: small dense cluster just right of cluster 0...
	for i := 0; i < count(60); i++ {
		add(1, gauss(rng, 5.5, 8.0, 0.25, 0.25))
	}
	// ...connected to cluster 0 by a narrow bridge (assigned to cluster 0).
	for i := 0; i < count(25); i++ {
		t := rng.Float64()
		add(0, Point{X: 2.8 + t*2.3, Y: 8.0 + rng.NormFloat64()*0.05})
	}
	// 2: long horizontal strip along the bottom.
	for i := 0; i < count(150); i++ {
		t := rng.Float64()
		add(2, Point{X: 1.0 + t*7.0, Y: 1.0 + rng.NormFloat64()*0.15})
	}
	// 3: vertical elongated strip on the right.
	for i := 0; i < count(120); i++ {
		t := rng.Float64()
		add(3, Point{X: 9.5 + rng.NormFloat64()*0.15, Y: 2.0 + t*5.0})
	}
	// 4: medium cluster, center.
	for i := 0; i < count(110); i++ {
		add(4, gauss(rng, 5.0, 4.5, 0.45, 0.45))
	}
	// 5: small cluster below cluster 0.
	for i := 0; i < count(55); i++ {
		add(5, gauss(rng, 1.5, 4.5, 0.3, 0.3))
	}
	// 6: wide sparse cluster, upper right.
	for i := 0; i < count(100); i++ {
		add(6, gauss(rng, 8.5, 8.5, 0.7, 0.4))
	}
	return d
}

// GaussianBlobsOptions configures GaussianBlobs.
type GaussianBlobsOptions struct {
	// K is the number of planted clusters (the paper's k*).
	K int
	// PerCluster is the number of points drawn around each center (the
	// paper uses 100).
	PerCluster int
	// NoiseFraction adds this fraction of the clustered points as uniform
	// background noise labeled partition.Missing (the paper uses 0.20).
	NoiseFraction float64
	// Std is the standard deviation of each cluster in both axes. Zero
	// means 0.05 (clusters in the unit square, as in the paper).
	Std float64
	// MinSeparation forces the drawn centers to be at least this far apart;
	// zero keeps the paper's pure uniform draw.
	MinSeparation float64
	// Ring places the centers equally spaced (with small angular jitter) on
	// a circle of radius 0.35 around the square's center instead of drawing
	// them uniformly. With uniform draws one pair of centers is usually
	// uniquely closest, and every k-means run with k < K merges that same
	// pair — a majority that clustering aggregation (correctly) preserves.
	// Near-equidistant centers make the low-k merges vary across runs,
	// which is the regime Figure 4 demonstrates.
	Ring bool
}

// GaussianBlobs reproduces the generator of Figure 4 and Section 5.3:
// K cluster centers uniform in the unit square, PerCluster normal points
// around each, plus NoiseFraction·K·PerCluster uniform background points.
func GaussianBlobs(seed int64, opts GaussianBlobsOptions) (*Dataset, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("points: K must be positive, got %d", opts.K)
	}
	if opts.PerCluster <= 0 {
		return nil, fmt.Errorf("points: PerCluster must be positive, got %d", opts.PerCluster)
	}
	if opts.NoiseFraction < 0 {
		return nil, fmt.Errorf("points: negative NoiseFraction %v", opts.NoiseFraction)
	}
	std := opts.Std
	if std == 0 {
		std = 0.05
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Point, opts.K)
	if opts.Ring {
		phase := rng.Float64() * 2 * math.Pi
		for i := range centers {
			jitter := (rng.Float64() - 0.5) * 0.3 * 2 * math.Pi / float64(opts.K)
			angle := phase + 2*math.Pi*float64(i)/float64(opts.K) + jitter
			centers[i] = Point{X: 0.5 + 0.35*math.Cos(angle), Y: 0.5 + 0.35*math.Sin(angle)}
		}
	} else {
		for i := range centers {
			for {
				centers[i] = Point{X: rng.Float64(), Y: rng.Float64()}
				ok := true
				for j := 0; j < i; j++ {
					if Dist(centers[i], centers[j]) < opts.MinSeparation {
						ok = false
						break
					}
				}
				if ok {
					break
				}
			}
		}
	}
	d := &Dataset{}
	for c, center := range centers {
		for i := 0; i < opts.PerCluster; i++ {
			d.Points = append(d.Points, gauss(rng, center.X, center.Y, std, std))
			d.Truth = append(d.Truth, c)
		}
	}
	noise := int(math.Round(opts.NoiseFraction * float64(opts.K*opts.PerCluster)))
	for i := 0; i < noise; i++ {
		d.Points = append(d.Points, Point{X: rng.Float64(), Y: rng.Float64()})
		d.Truth = append(d.Truth, partition.Missing)
	}
	return d, nil
}

// ConcentricRings generates k concentric noisy rings around the origin —
// the classic scene where centroid methods (k-means, Ward) fail and
// single linkage succeeds, complementing SevenClusterScene's opposite
// failure mode. Ring i has radius (i+1)·spacing and perPoints points.
func ConcentricRings(seed int64, k, perRing int, spacing, noise float64) (*Dataset, error) {
	if k <= 0 || perRing <= 0 {
		return nil, fmt.Errorf("points: rings need positive k and perRing, got %d, %d", k, perRing)
	}
	if spacing <= 0 {
		spacing = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for ring := 0; ring < k; ring++ {
		r := float64(ring+1) * spacing
		for i := 0; i < perRing; i++ {
			angle := rng.Float64() * 2 * math.Pi
			rr := r + rng.NormFloat64()*noise
			d.Points = append(d.Points, Point{X: rr * math.Cos(angle), Y: rr * math.Sin(angle)})
			d.Truth = append(d.Truth, ring)
		}
	}
	return d, nil
}

// Bounds returns the bounding box of the points. It returns zeros for an
// empty set.
func Bounds(pts []Point) (minX, minY, maxX, maxY float64) {
	if len(pts) == 0 {
		return 0, 0, 0, 0
	}
	minX, minY = pts[0].X, pts[0].Y
	maxX, maxY = pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, minY, maxX, maxY
}
