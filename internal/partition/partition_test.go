package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   Labels
		want Labels
	}{
		{"empty", Labels{}, Labels{}},
		{"already normalized", Labels{0, 1, 0, 2}, Labels{0, 1, 0, 2}},
		{"gap labels", Labels{5, 9, 5, 120}, Labels{0, 1, 0, 2}},
		{"first appearance order", Labels{3, 1, 3, 2, 1}, Labels{0, 1, 0, 2, 1}},
		{"missing preserved", Labels{7, Missing, 7, 4}, Labels{0, Missing, 0, 1}},
		{"all missing", Labels{Missing, Missing}, Labels{Missing, Missing}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.Normalize()
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Normalize(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if !got.IsNormalized() {
				t.Errorf("Normalize(%v) = %v is not IsNormalized", tc.in, got)
			}
		})
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := Labels{5, 3, 5}
	in.Normalize()
	if !reflect.DeepEqual(in, Labels{5, 3, 5}) {
		t.Errorf("Normalize mutated its receiver: %v", in)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		l := randomLabels(raw)
		once := l.Normalize()
		return reflect.DeepEqual(once, once.Normalize())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomLabels converts an arbitrary byte slice into a labels vector with
// some missing entries.
func randomLabels(raw []uint8) Labels {
	l := make(Labels, len(raw))
	for i, b := range raw {
		if b%7 == 0 {
			l[i] = Missing
		} else {
			l[i] = int(b % 5)
		}
	}
	return l
}

func TestK(t *testing.T) {
	tests := []struct {
		in   Labels
		want int
	}{
		{Labels{}, 0},
		{Labels{0, 0, 0}, 1},
		{Labels{0, 1, 2}, 3},
		{Labels{5, 5, 9}, 2},
		{Labels{Missing, Missing}, 0},
		{Labels{Missing, 0, 1}, 2},
	}
	for _, tc := range tests {
		if got := tc.in.K(); got != tc.want {
			t.Errorf("K(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Labels{0, 1, Missing}).Validate(); err != nil {
		t.Errorf("valid labels rejected: %v", err)
	}
	if err := (Labels{0, -2}).Validate(); err == nil {
		t.Error("label -2 accepted")
	}
}

func TestSameCluster(t *testing.T) {
	l := Labels{0, 0, 1, Missing, Missing}
	tests := []struct {
		u, v int
		want bool
	}{
		{0, 1, true},
		{0, 2, false},
		{0, 3, false},
		{3, 4, false}, // two missings never match
		{3, 3, false}, // missing does not even match itself
	}
	for _, tc := range tests {
		if got := l.SameCluster(tc.u, tc.v); got != tc.want {
			t.Errorf("SameCluster(%d,%d) = %t, want %t", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestClustersAndSizes(t *testing.T) {
	l := Labels{2, 7, 2, Missing, 7, 2}
	got := l.Clusters()
	want := [][]int{{0, 2, 5}, {1, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Clusters() = %v, want %v", got, want)
	}
	if sizes := l.Sizes(); !reflect.DeepEqual(sizes, []int{3, 2}) {
		t.Errorf("Sizes() = %v, want [3 2]", sizes)
	}
}

func TestFromClusters(t *testing.T) {
	got, err := FromClusters(5, [][]int{{0, 2}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	want := Labels{0, 1, 0, Missing, Missing}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FromClusters = %v, want %v", got, want)
	}

	if _, err := FromClusters(3, [][]int{{0}, {0}}); err == nil {
		t.Error("duplicate membership accepted")
	}
	if _, err := FromClusters(3, [][]int{{5}}); err == nil {
		t.Error("out-of-range object accepted")
	}
	if _, err := FromClusters(3, [][]int{{-1}}); err == nil {
		t.Error("negative object accepted")
	}
}

func TestSingletonsAndSingle(t *testing.T) {
	if got := Singletons(3); !reflect.DeepEqual(got, Labels{0, 1, 2}) {
		t.Errorf("Singletons(3) = %v", got)
	}
	if got := Single(3); !reflect.DeepEqual(got, Labels{0, 0, 0}) {
		t.Errorf("Single(3) = %v", got)
	}
	if Singletons(0).K() != 0 || Single(0).K() != 0 {
		t.Error("size-0 clusterings should have no clusters")
	}
}

func TestDistanceBasic(t *testing.T) {
	tests := []struct {
		name string
		a, b Labels
		want int
	}{
		{"identical", Labels{0, 0, 1}, Labels{5, 5, 9}, 0},
		{"opposite", Labels{0, 0}, Labels{0, 1}, 1},
		{"single vs singletons n=3", Labels{0, 0, 0}, Labels{0, 1, 2}, 3},
		{"single vs singletons n=4", Labels{0, 0, 0, 0}, Labels{0, 1, 2, 3}, 6},
		{"partial overlap", Labels{0, 0, 1, 1}, Labels{0, 1, 1, 0}, 4},
		{"missing excluded", Labels{0, 0, Missing}, Labels{0, 1, 0}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Distance(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("Distance(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestDistanceLengthMismatch(t *testing.T) {
	if _, err := Distance(Labels{0}, Labels{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// bruteDistance counts disagreeing unordered pairs directly.
func bruteDistance(a, b Labels) int {
	d := 0
	for u := 0; u < len(a); u++ {
		if a[u] == Missing || b[u] == Missing {
			continue
		}
		for v := u + 1; v < len(a); v++ {
			if a[v] == Missing || b[v] == Missing {
				continue
			}
			sa := a[u] == a[v]
			sb := b[u] == b[v]
			if sa != sb {
				d++
			}
		}
	}
	return d
}

func TestDistanceMatchesBruteForce(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		a := randomLabels(rawA[:n])
		b := randomLabels(rawB[:n])
		got, err := Distance(a, b)
		return err == nil && got == bruteDistance(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randClustering := func(n, k int) Labels {
		l := make(Labels, n)
		for i := range l {
			l[i] = rng.Intn(k)
		}
		return l
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		a := randClustering(n, 1+rng.Intn(4))
		b := randClustering(n, 1+rng.Intn(4))
		c := randClustering(n, 1+rng.Intn(4))
		dab, _ := Distance(a, b)
		dba, _ := Distance(b, a)
		if dab != dba {
			t.Fatalf("distance not symmetric: %d vs %d", dab, dba)
		}
		daa, _ := Distance(a, a)
		if daa != 0 {
			t.Fatalf("d(a,a) = %d, want 0", daa)
		}
		// Triangle inequality (Observation 1).
		dac, _ := Distance(a, c)
		dbc, _ := Distance(b, c)
		if dac > dab+dbc {
			t.Fatalf("triangle inequality violated: d(a,c)=%d > d(a,b)+d(b,c)=%d", dac, dab+dbc)
		}
	}
}

func TestContingencySkipped(t *testing.T) {
	tab, err := Contingency(Labels{0, Missing, 1}, Labels{0, 0, Missing})
	if err != nil {
		t.Fatal(err)
	}
	if tab.N != 1 || tab.Skipped != 2 {
		t.Errorf("N=%d Skipped=%d, want 1 and 2", tab.N, tab.Skipped)
	}
}

func TestRandIndex(t *testing.T) {
	ri, err := RandIndex(Labels{0, 0, 1, 1}, Labels{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("RandIndex identical = %v, want 1", ri)
	}
	ri, _ = RandIndex(Labels{0, 0}, Labels{0, 1})
	if ri != 0 {
		t.Errorf("RandIndex opposite = %v, want 0", ri)
	}
	ri, _ = RandIndex(Labels{Missing}, Labels{0})
	if ri != 1 {
		t.Errorf("RandIndex with no pairs = %v, want 1", ri)
	}
}
