package hetero

import (
	"math"
	"math/rand"
	"testing"

	"clusteragg/internal/core"
	"clusteragg/internal/dataset"
	"clusteragg/internal/eval"
	"clusteragg/internal/partition"
)

func TestClusteringsErrors(t *testing.T) {
	if _, err := Clusterings(&dataset.Table{Name: "e"}, Options{}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestCluster1D(t *testing.T) {
	values := []float64{1, 1.1, 0.9, 10, 10.2, 9.8, 20, 19.9, 20.1}
	labels := cluster1D(values, 3)
	if labels.K() != 3 {
		t.Fatalf("K = %d, want 3 (%v)", labels.K(), labels)
	}
	// The three value groups must land in three distinct clusters.
	if labels[0] != labels[1] || labels[0] != labels[2] {
		t.Errorf("low group split: %v", labels)
	}
	if labels[3] != labels[4] || labels[3] != labels[5] {
		t.Errorf("mid group split: %v", labels)
	}
	if labels[0] == labels[3] || labels[3] == labels[6] {
		t.Errorf("groups merged: %v", labels)
	}
}

func TestCluster1DMissingAndDegenerate(t *testing.T) {
	labels := cluster1D([]float64{math.NaN(), 5, math.NaN()}, 3)
	if labels[0] != partition.Missing || labels[2] != partition.Missing {
		t.Errorf("NaN not Missing: %v", labels)
	}
	if labels[1] != 0 {
		t.Errorf("single value not cluster 0: %v", labels)
	}
	// All NaN.
	all := cluster1D([]float64{math.NaN(), math.NaN()}, 2)
	for _, v := range all {
		if v != partition.Missing {
			t.Errorf("all-NaN column: %v", all)
		}
	}
	// Fewer distinct values than k.
	few := cluster1D([]float64{1, 1, 2, 2}, 5)
	if few.K() != 2 {
		t.Errorf("K with 2 distinct values = %d, want 2", few.K())
	}
}

func TestCluster1DDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 500)
	for i := range values {
		values[i] = rng.NormFloat64()
	}
	a := cluster1D(values, 4)
	b := cluster1D(values, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cluster1D not deterministic")
		}
	}
}

// mixedTable builds a table with one categorical and two numeric columns
// driven by two clear groups.
func mixedTable(n int) *dataset.Table {
	rng := rand.New(rand.NewSource(5))
	cat := &dataset.Column{Name: "c", Kind: dataset.Categorical,
		Values: make([]int, n), Names: []string{"a", "b"}}
	num1 := &dataset.Column{Name: "x", Kind: dataset.Numeric, Floats: make([]float64, n)}
	num2 := &dataset.Column{Name: "y", Kind: dataset.Numeric, Floats: make([]float64, n)}
	class := make(partition.Labels, n)
	for i := 0; i < n; i++ {
		g := i % 2
		class[i] = g
		cat.Values[i] = g
		if rng.Float64() < 0.05 {
			cat.Values[i] = 1 - g
		}
		num1.Floats[i] = float64(g*10) + rng.NormFloat64()
		num2.Floats[i] = float64(g*-8) + rng.NormFloat64()
	}
	return &dataset.Table{Name: "mixed", Cols: []*dataset.Column{cat, num1, num2}, Class: class,
		ClassNames: []string{"g0", "g1"}}
}

func TestClusteringsMixed(t *testing.T) {
	tab := mixedTable(200)
	cs, err := Clusterings(tab, Options{NumericK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("%d clusterings, want 3", len(cs))
	}
	for i, c := range cs {
		if len(c) != 200 {
			t.Fatalf("clustering %d has %d labels", i, len(c))
		}
	}
}

func TestClusteringsJoint(t *testing.T) {
	tab := mixedTable(200)
	cs, err := Clusterings(tab, Options{NumericK: 2, Joint: true, JointK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("%d clusterings, want 4 (3 attrs + joint)", len(cs))
	}
	joint := cs[3]
	ri, err := partition.RandIndex(joint, tab.Class)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.95 {
		t.Errorf("joint clustering Rand index %v on separable groups", ri)
	}
}

func TestHeteroAggregationRecoversGroups(t *testing.T) {
	tab := mixedTable(300)
	cs, err := Clusterings(tab, Options{NumericK: 2, Joint: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(cs, core.ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := p.Aggregate(core.MethodAgglomerative, core.AggregateOptions{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	ec, err := eval.ClassificationError(agg, tab.Class)
	if err != nil {
		t.Fatal(err)
	}
	if ec > 0.05 {
		t.Errorf("heterogeneous aggregation E_C = %v", ec)
	}
}

func TestJointWithMissingRows(t *testing.T) {
	tab := mixedTable(50)
	tab.Cols[1].Floats[0] = math.NaN()
	cs, err := Clusterings(tab, Options{Joint: true})
	if err != nil {
		t.Fatal(err)
	}
	joint := cs[len(cs)-1]
	if joint[0] != partition.Missing {
		t.Errorf("row with missing numeric value not Missing in joint clustering: %v", joint[0])
	}
}

func TestCensusHeterogeneous(t *testing.T) {
	tab := dataset.SyntheticCensus(1, 1500)
	cs, err := Clusterings(tab, Options{NumericK: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 8 categorical + 6 numeric.
	if len(cs) != 14 {
		t.Fatalf("%d clusterings, want 14", len(cs))
	}
	p, err := core.NewProblem(cs, core.ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := p.Sample(core.MethodFurthest, core.AggregateOptions{},
		core.SamplingOptions{SampleSize: 300, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if labels.K() < 5 {
		t.Errorf("census hetero aggregation found only %d clusters", labels.K())
	}
}
