package core

import (
	"math/rand"
	"testing"

	"clusteragg/internal/partition"
)

// plantedProblem builds m noisy copies of a planted clustering with kTrue
// equal-size clusters over n objects: each copy reassigns a fraction noise
// of the objects to random clusters.
func plantedProblem(t testing.TB, rng *rand.Rand, n, kTrue, m int, noise float64) (*Problem, partition.Labels) {
	t.Helper()
	truth := make(partition.Labels, n)
	for i := range truth {
		truth[i] = i % kTrue
	}
	cs := make([]partition.Labels, m)
	for i := range cs {
		c := truth.Clone()
		for j := range c {
			if rng.Float64() < noise {
				c[j] = rng.Intn(kTrue)
			}
		}
		cs[i] = c
	}
	p, err := NewProblem(cs, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p, truth
}

func TestSampleValidOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	p, _ := plantedProblem(t, rng, 300, 4, 7, 0.15)
	for _, method := range []Method{MethodAgglomerative, MethodFurthest, MethodBalls} {
		labels, err := p.Sample(method, AggregateOptions{}, SamplingOptions{
			SampleSize: 60,
			Rand:       rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(labels) != p.N() {
			t.Fatalf("%v: %d labels, want %d", method, len(labels), p.N())
		}
		if err := labels.Validate(); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for i, v := range labels {
			if v == partition.Missing {
				t.Fatalf("%v: object %d unassigned", method, i)
			}
		}
		if !labels.IsNormalized() {
			t.Fatalf("%v: labels not normalized", method)
		}
	}
}

func TestSampleRecoversPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	p, truth := plantedProblem(t, rng, 400, 4, 9, 0.1)
	labels, err := p.Sample(MethodAgglomerative, AggregateOptions{}, SamplingOptions{
		SampleSize: 80,
		Rand:       rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := partition.RandIndex(labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.95 {
		t.Errorf("sampled aggregation Rand index %v, want >= 0.95 (k found %d)", ri, labels.K())
	}
}

func TestSampleCloseToFullAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	p, _ := plantedProblem(t, rng, 250, 3, 5, 0.1)
	full, err := p.Aggregate(MethodAgglomerative, AggregateOptions{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := p.Sample(MethodAgglomerative, AggregateOptions{}, SamplingOptions{
		SampleSize: 70,
		Rand:       rand.New(rand.NewSource(13)),
	})
	if err != nil {
		t.Fatal(err)
	}
	fullD, sampD := p.Disagreement(full), p.Disagreement(sampled)
	if sampD > 1.25*fullD {
		t.Errorf("sampled disagreement %v more than 25%% above full %v", sampD, fullD)
	}
}

func TestSampleSizeLargerThanNFallsBack(t *testing.T) {
	p := figure1Problem(t)
	labels, err := p.Sample(MethodAgglomerative, AggregateOptions{}, SamplingOptions{SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Disagreement(labels); d != 5 {
		t.Errorf("fallback aggregation disagreement %v, want 5", d)
	}
}

func TestSampleNegativeSize(t *testing.T) {
	p := figure1Problem(t)
	if _, err := p.Sample(MethodAgglomerative, AggregateOptions{}, SamplingOptions{SampleSize: -1}); err == nil {
		t.Error("negative sample size accepted")
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	p, _ := plantedProblem(t, rng, 200, 3, 5, 0.2)
	a, err := p.Sample(MethodFurthest, AggregateOptions{}, SamplingOptions{
		SampleSize: 50, Rand: rand.New(rand.NewSource(21)),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Sample(MethodFurthest, AggregateOptions{}, SamplingOptions{
		SampleSize: 50, Rand: rand.New(rand.NewSource(21)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different clusterings at %d", i)
		}
	}
}

func TestSampleNoSingletonRecluster(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	p, _ := plantedProblem(t, rng, 150, 3, 5, 0.3)
	labels, err := p.Sample(MethodBalls, AggregateOptions{}, SamplingOptions{
		SampleSize:           30,
		Rand:                 rand.New(rand.NewSource(23)),
		NoSingletonRecluster: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != p.N() {
		t.Fatalf("%d labels, want %d", len(labels), p.N())
	}
}

func TestAutoSampleSize(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 14}, // ceil(20*ln 2) = 14, capped at n=2 -> 2
	}
	_ = tests
	if got := autoSampleSize(1); got != 1 {
		t.Errorf("autoSampleSize(1) = %d, want 1", got)
	}
	if got := autoSampleSize(2); got != 2 {
		t.Errorf("autoSampleSize(2) = %d (capped), want 2", got)
	}
	if got := autoSampleSize(100000); got < 200 || got > 300 {
		t.Errorf("autoSampleSize(1e5) = %d, want ~230", got)
	}
	// Auto size used when SampleSize is zero.
	rng := rand.New(rand.NewSource(127))
	p, _ := plantedProblem(t, rng, 500, 3, 5, 0.1)
	labels, err := p.Sample(MethodAgglomerative, AggregateOptions{}, SamplingOptions{
		Rand: rand.New(rand.NewSource(29)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 500 {
		t.Fatalf("auto-size sample returned %d labels", len(labels))
	}
}

// TestSampleWorkersIdentical: the assignment phase stripes objects across
// workers, but every object's decision is independent of scheduling, so the
// returned clustering must be bit-identical for every worker count — on
// instances with missing values and non-uniform weights, under both missing
// modes and both assignment paths.
func TestSampleWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 6; trial++ {
		m := 3 + rng.Intn(6)
		opts := ProblemOptions{MissingTogether: 0.25 + 0.5*rng.Float64()}
		if trial%2 == 1 {
			opts.MissingMode = MissingAverage
		}
		w := make([]float64, m)
		for i := range w {
			w[i] = 0.25 + rng.Float64()*3
		}
		opts.Weights = w
		p := randMixedProblem(t, rng, 300+rng.Intn(200), m, 0.25, opts)

		for _, ref := range []bool{false, true} {
			var base partition.Labels
			for _, workers := range []int{0, 1, 2, 3, 8} {
				labels, err := p.Sample(MethodAgglomerative, AggregateOptions{Workers: workers}, SamplingOptions{
					SampleSize: 60, Rand: rand.New(rand.NewSource(int64(trial))), ReferenceAssign: ref,
				})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = labels
					continue
				}
				for i := range labels {
					if labels[i] != base[i] {
						t.Fatalf("trial %d (ref=%v): Workers=%d diverges from Workers=0 at object %d",
							trial, ref, workers, i)
					}
				}
			}
		}
	}
}
