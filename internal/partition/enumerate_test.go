package partition

import (
	"reflect"
	"testing"
)

func TestBell(t *testing.T) {
	want := []uint64{1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975}
	for n, w := range want {
		if got := Bell(n); got != w {
			t.Errorf("Bell(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestBellPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bell(-1) did not panic")
		}
	}()
	Bell(-1)
}

func TestEnumeratePartitionsCount(t *testing.T) {
	for n := 0; n <= 8; n++ {
		count := uint64(0)
		EnumeratePartitions(n, func(Labels) bool {
			count++
			return true
		})
		if count != Bell(n) {
			t.Errorf("n=%d: enumerated %d partitions, want Bell(n)=%d", n, count, Bell(n))
		}
	}
}

func TestEnumeratePartitionsN3(t *testing.T) {
	var got []Labels
	EnumeratePartitions(3, func(l Labels) bool {
		got = append(got, l.Clone())
		return true
	})
	want := []Labels{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {0, 1, 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partitions of 3 = %v, want %v", got, want)
	}
}

func TestEnumeratePartitionsValidAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	EnumeratePartitions(6, func(l Labels) bool {
		if !l.IsNormalized() {
			t.Fatalf("partition %v not normalized", l)
		}
		key := ""
		for _, v := range l {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("partition %v enumerated twice", l)
		}
		seen[key] = true
		return true
	})
}

func TestEnumeratePartitionsEarlyStop(t *testing.T) {
	count := 0
	EnumeratePartitions(6, func(Labels) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop after %d calls, want 10", count)
	}
}
